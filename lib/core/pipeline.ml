module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Belady = Ripple_cache.Belady
module Pt = Ripple_trace.Pt
module Bb_trace = Ripple_trace.Bb_trace
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator

type prefetch = No_prefetch | Nlp | Fdip

let prefetch_name = function No_prefetch -> "none" | Nlp -> "nlp" | Fdip -> "fdip"

let prefetcher_of ?config prefetch program =
  match prefetch with
  | No_prefetch -> Simulator.prefetcher_none program
  | Nlp -> Simulator.prefetcher_nlp ?config program
  | Fdip -> Simulator.prefetcher_fdip ?config program

let belady_mode_of = function No_prefetch -> Belady.Min | Nlp | Fdip -> Belady.Demand_min

module Lint = Ripple_analysis.Lint
module Invalidation_check = Ripple_analysis.Invalidation_check
module Json = Ripple_util.Json

module Degrade = struct
  type level = Full | Safe_only | Hints_off

  let level_name = function Full -> "full" | Safe_only -> "safe-only" | Hints_off -> "off"

  type t = {
    level : level;
    fingerprint_ok : bool;
    salvage : float;
    drift : float;
    stripped : int;
  }

  let full = { level = Full; fingerprint_ok = true; salvage = 1.0; drift = 0.0; stripped = 0 }

  let to_json t =
    Json.Obj
      [
        ("level", Json.String (level_name t.level));
        ("fingerprint_ok", Json.Bool t.fingerprint_ok);
        ("salvage", Json.Float t.salvage);
        ("drift", Json.Float t.drift);
        ("stripped", Json.Int t.stripped);
      ]
end

type analysis = {
  threshold : float;
  n_windows : int;
  n_decisions : int;
  drops : Cue_block.drops;
  injection : Injector.stats;
  lint : Lint.summary option;
  degrade : Degrade.t;
}

module Options = struct
  type t = {
    config : Config.t;
    threshold : float;
    mode : Injector.mode;
    skip_jit : bool;
    max_hints_per_block : int;
    scan_limit : int;
    min_support : int;
    exclude_prefetch_covered : bool;
    pt_roundtrip : bool;
    verify : bool;
    degrade : bool;
    min_salvage : float;
    drift_safe : float;
    drift_off : float;
  }

  let default =
    {
      config = Config.default;
      threshold = 0.5;
      mode = Injector.Invalidate;
      skip_jit = true;
      max_hints_per_block = Injector.default_max_hints_per_block;
      scan_limit = Cue_block.default_scan_limit;
      min_support = Cue_block.default_min_support;
      exclude_prefetch_covered = false;
      pt_roundtrip = true;
      verify = false;
      degrade = false;
      min_salvage = 0.5;
      drift_safe = 0.02;
      drift_off = 0.15;
    }
end

(* Below this salvage ratio a profile is considered partial enough that
   only statically-verified-safe hints may survive. *)
let safe_salvage = 0.95

type profile = {
  trace : int array;
  source : Program.t;
  salvage : float;
  pt_errors : int;
}

let profile_of_trace ?(salvage = 1.0) ~source trace = { trace; source; salvage; pt_errors = 0 }

let profile_of_pt ~source data =
  let r = Pt.decode_result source data in
  { trace = r.Pt.trace; source; salvage = r.Pt.salvage; pt_errors = List.length r.Pt.errors }

let provenance_of_stats (s : Injector.stats) =
  List.map
    (fun (p : Injector.placement) ->
      {
        Lint.block = p.Injector.block;
        line = p.Injector.line;
        probability = p.Injector.probability;
        windows = p.Injector.windows;
      })
    s.Injector.placements

let no_drops =
  {
    Cue_block.windows_total = 0;
    no_candidate = 0;
    below_support = 0;
    below_threshold = 0;
    selected = 0;
  }

let no_injection =
  { Injector.injected = 0; skipped_jit = 0; skipped_cap = 0; blocks_touched = 0; placements = [] }

(* Safe-only mode: classify every injected hint on the instrumented
   binary and strip the ones the static analysis cannot prove harmless
   (Harmful or Redundant), keeping injection stats and provenance in
   step.  Placements are ordered block-ascending then by within-block
   injection order, matching each block's hint array — so the
   (block, hint-index) key filters both consistently. *)
let strip_unsafe ~(config : Config.t) instrumented (injection : Injector.stats) =
  let classified =
    Invalidation_check.classify ~geometry:config.Config.l1i
      ~entry:(Program.entry instrumented) (Program.blocks instrumented)
  in
  let unsafe = Hashtbl.create 16 in
  List.iter
    (fun ((site : Invalidation_check.site), cls) ->
      match cls with
      | Invalidation_check.Harmful _ | Invalidation_check.Redundant _ ->
        Hashtbl.replace unsafe (site.Invalidation_check.block, site.Invalidation_check.index) ()
      | Invalidation_check.Safe_dead | Invalidation_check.Safe_pressure -> ())
    classified;
  if Hashtbl.length unsafe = 0 then (instrumented, injection, 0)
  else begin
    let stripped = Hashtbl.length unsafe in
    let hints =
      Array.mapi
        (fun b (blk : Basic_block.t) ->
          List.filteri
            (fun i _ -> not (Hashtbl.mem unsafe (b, i)))
            (Array.to_list blk.Basic_block.hints))
        (Program.blocks instrumented)
    in
    let program, _remap = Program.with_hints instrumented ~hints in
    let counters = Hashtbl.create 16 in
    let placements =
      List.filter
        (fun (p : Injector.placement) ->
          let b = p.Injector.block in
          let i = Option.value (Hashtbl.find_opt counters b) ~default:0 in
          Hashtbl.replace counters b (i + 1);
          not (Hashtbl.mem unsafe (b, i)))
        injection.Injector.placements
    in
    let blocks_touched = Array.fold_left (fun acc h -> if h <> [] then acc + 1 else acc) 0 hints in
    let injection =
      {
        injection with
        Injector.injected = injection.Injector.injected - stripped;
        blocks_touched;
        placements;
      }
    in
    (program, injection, stripped)
  end

let instrument_profile (o : Options.t) ~program ~(profile : profile) ~prefetch =
  let config = o.Options.config in
  let fingerprint_ok =
    Program.layout_fingerprint profile.source = Program.layout_fingerprint program
  in
  (* Drift is measured against the binary about to be instrumented: the
     fraction of profile transitions its CFG cannot produce. *)
  let drift = if o.Options.degrade then Bb_trace.drift program profile.trace else 0.0 in
  let level =
    if not o.Options.degrade then Degrade.Full
    else if profile.salvage < o.Options.min_salvage || drift > o.Options.drift_off then
      Degrade.Hints_off
    else if (not fingerprint_ok) || drift > o.Options.drift_safe || profile.salvage < safe_salvage
    then Degrade.Safe_only
    else Degrade.Full
  in
  let degrade_record ~stripped =
    { Degrade.level; fingerprint_ok; salvage = profile.salvage; drift; stripped }
  in
  match level with
  | Degrade.Hints_off ->
    (* The profile is not trustworthy enough to act on at all: ship the
       binary untouched, so behaviour is exactly the baseline policy. *)
    ( program,
      {
        threshold = o.Options.threshold;
        n_windows = 0;
        n_decisions = 0;
        drops = no_drops;
        injection = no_injection;
        lint = None;
        degrade = degrade_record ~stripped:0;
      } )
  | Degrade.Full | Degrade.Safe_only ->
    (* Step 2 (Fig. 4): ideal-policy replay over the stream the
       prefetcher produces on the profiled layout, yielding eviction
       windows. *)
    let source = profile.source in
    let trace = profile.trace in
    let stream =
      Simulator.record_stream ~config ~program:source ~trace
        ~prefetcher:(prefetcher_of ~config prefetch)
        ()
    in
    let replay = Belady.simulate config.Config.l1i ~mode:(belady_mode_of prefetch) stream in
    let windows =
      Eviction_window.of_evictions ~demand_covered_only:o.Options.exclude_prefetch_covered
        replay.Belady.evictions
    in
    let exec_counts = Bb_trace.exec_counts source trace in
    let decisions, drops =
      Cue_block.analyze_report ~scan_limit:o.Options.scan_limit
        ~min_support:o.Options.min_support ~stream ~windows ~exec_counts
        ~threshold:o.Options.threshold ()
    in
    (* Step 3: link-time injection — into the binary being shipped,
       which may not be the layout the profile was collected on. *)
    let decisions =
      List.filter (fun (d : Cue_block.decision) -> d.Cue_block.cue_block < Program.n_blocks program) decisions
    in
    let instrumented, _remap, injection =
      Injector.inject ~mode:o.Options.mode ~skip_jit:o.Options.skip_jit
        ~max_hints_per_block:o.Options.max_hints_per_block ~program ~decisions ()
    in
    let instrumented, injection, stripped =
      match level with
      | Degrade.Safe_only -> strip_unsafe ~config instrumented injection
      | Degrade.Full | Degrade.Hints_off -> (instrumented, injection, 0)
    in
    (* Optional step 4: static verification of the instrumented binary
       (the `ripple-sim lint` pass as a pipeline gate). *)
    let lint =
      if o.Options.verify then
        Some
          (Lint.check_program ~geometry:config.Config.l1i
             ~provenance:(provenance_of_stats injection) instrumented)
      else None
    in
    ( instrumented,
      {
        threshold = o.Options.threshold;
        n_windows = Array.length windows;
        n_decisions = List.length decisions;
        drops;
        injection;
        lint;
        degrade = degrade_record ~stripped;
      } )

let instrument_with (o : Options.t) ~program ~profile_trace ~prefetch =
  (* Step 1 (Fig. 4): runtime profiling.  The analysis consumes the
     PT round trip, not the raw trace.  LBR-sampled profiles are stitched
     from disjoint path fragments and bypass the codec
     ([pt_roundtrip = false]). *)
  let profile =
    if o.Options.pt_roundtrip then profile_of_pt ~source:program (Pt.encode program profile_trace)
    else profile_of_trace ~source:program profile_trace
  in
  instrument_profile o ~program ~profile ~prefetch

type evaluation = {
  result : Simulator.result;
  coverage : float;
  accuracy : float;
  hint_execs : int;
  static_overhead : float;
  dynamic_overhead : float;
}

let evaluation_to_json (ev : evaluation) =
  Json.Obj
    [
      ("result", Simulator.result_to_json ev.result);
      ("coverage", Json.Float ev.coverage);
      ("accuracy", Json.Float ev.accuracy);
      ("hint_execs", Json.Int ev.hint_execs);
      ("static_overhead", Json.Float ev.static_overhead);
      ("dynamic_overhead", Json.Float ev.dynamic_overhead);
    ]

let overhead ~extra ~base = if base = 0 then 0.0 else Float.of_int extra /. Float.of_int base

let evaluate ?(config = Config.default) ?(warmup = 0) ~original ~instrumented ~trace ~policy
    ~prefetch () =
  (* Ideal eviction windows on the evaluation stream of the instrumented
     binary, in trace coordinates: the accuracy yardstick. *)
  let stream, stream_pos =
    Simulator.record_stream_indexed ~config ~program:instrumented ~trace
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let replay = Belady.simulate config.Config.l1i ~mode:(belady_mode_of prefetch) stream in
  let windows =
    Eviction_window.to_trace_coords (Eviction_window.of_evictions replay.Belady.evictions)
      ~stream_pos
  in
  let index = Eviction_window.Index.create windows in
  let hint_execs = ref 0 in
  let accurate = ref 0 in
  let on_hint ~at hint ~resident =
    if at >= warmup then begin
    incr hint_execs;
    (* A hint that fires inside one of its victim's ideal windows evicts a
       line the ideal policy would evict too; one that finds the line
       absent cannot introduce a miss either. *)
    let line = Basic_block.hint_line hint in
    if (not resident) || Eviction_window.Index.mem index ~line ~at then incr accurate
    end
  in
  let result =
    Simulator.run ~config ~warmup ~on_hint ~program:instrumented ~trace ~policy
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let accuracy =
    if !hint_execs = 0 then 1.0 else Float.of_int !accurate /. Float.of_int !hint_execs
  in
  {
    result;
    coverage = Ripple_cache.Stats.coverage result.Simulator.l1i;
    accuracy;
    hint_execs = !hint_execs;
    static_overhead =
      overhead
        ~extra:(Program.static_instrs instrumented - Program.static_instrs original)
        ~base:(Program.static_instrs original);
    dynamic_overhead =
      overhead ~extra:result.Simulator.hint_instructions
        ~base:(result.Simulator.instructions - result.Simulator.hint_instructions);
  }

let search_threshold ?(config = Config.default) ?(warmup = 0)
    ?(candidates = [ 0.45; 0.55; 0.65 ]) ?(mode = Options.default.Options.mode)
    ?(exclude_prefetch_covered = Options.default.Options.exclude_prefetch_covered) ~program
    ~profile_trace ~eval_trace ~policy ~prefetch () =
  assert (candidates <> []);
  let best = ref None in
  List.iter
    (fun threshold ->
      let instrumented, _ =
        instrument_with
          { Options.default with config; threshold; mode; exclude_prefetch_covered }
          ~program ~profile_trace ~prefetch
      in
      let ev =
        evaluate ~config ~warmup ~original:program ~instrumented ~trace:eval_trace ~policy
          ~prefetch ()
      in
      match !best with
      | Some (_, b) when b.result.Simulator.ipc >= ev.result.Simulator.ipc -> ()
      | _ -> best := Some (threshold, ev))
    candidates;
  match !best with Some r -> r | None -> assert false
