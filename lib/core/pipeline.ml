module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Belady = Ripple_cache.Belady
module Pt = Ripple_trace.Pt
module Bb_trace = Ripple_trace.Bb_trace
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator

type prefetch = No_prefetch | Nlp | Fdip

let prefetch_name = function No_prefetch -> "none" | Nlp -> "nlp" | Fdip -> "fdip"

let prefetcher_of ?config prefetch program =
  match prefetch with
  | No_prefetch -> Simulator.prefetcher_none program
  | Nlp -> Simulator.prefetcher_nlp ?config program
  | Fdip -> Simulator.prefetcher_fdip ?config program

let belady_mode_of = function No_prefetch -> Belady.Min | Nlp | Fdip -> Belady.Demand_min

module Lint = Ripple_analysis.Lint

type analysis = {
  threshold : float;
  n_windows : int;
  n_decisions : int;
  drops : Cue_block.drops;
  injection : Injector.stats;
  lint : Lint.summary option;
}

module Options = struct
  type t = {
    config : Config.t;
    threshold : float;
    mode : Injector.mode;
    skip_jit : bool;
    max_hints_per_block : int;
    scan_limit : int;
    min_support : int;
    exclude_prefetch_covered : bool;
    pt_roundtrip : bool;
    verify : bool;
  }

  let default =
    {
      config = Config.default;
      threshold = 0.5;
      mode = Injector.Invalidate;
      skip_jit = true;
      max_hints_per_block = Injector.default_max_hints_per_block;
      scan_limit = Cue_block.default_scan_limit;
      min_support = Cue_block.default_min_support;
      exclude_prefetch_covered = false;
      pt_roundtrip = true;
      verify = false;
    }
end

let provenance_of_stats (s : Injector.stats) =
  List.map
    (fun (p : Injector.placement) ->
      {
        Lint.block = p.Injector.block;
        line = p.Injector.line;
        probability = p.Injector.probability;
        windows = p.Injector.windows;
      })
    s.Injector.placements

let instrument_with (o : Options.t) ~program ~profile_trace ~prefetch =
  let config = o.Options.config in
  (* Step 1 (Fig. 4): runtime profiling.  The analysis consumes the
     PT round trip, not the raw trace.  LBR-sampled profiles are stitched
     from disjoint path fragments and bypass the codec
     ([pt_roundtrip = false]). *)
  let trace =
    if o.Options.pt_roundtrip then Pt.decode program (Pt.encode program profile_trace)
    else profile_trace
  in
  (* Step 2: ideal-policy replay over the stream the prefetcher
     produces, yielding eviction windows. *)
  let stream =
    Simulator.record_stream ~config ~program ~trace
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let replay = Belady.simulate config.Config.l1i ~mode:(belady_mode_of prefetch) stream in
  let windows =
    Eviction_window.of_evictions ~demand_covered_only:o.Options.exclude_prefetch_covered
      replay.Belady.evictions
  in
  let exec_counts = Bb_trace.exec_counts program trace in
  let decisions, drops =
    Cue_block.analyze_report ~scan_limit:o.Options.scan_limit
      ~min_support:o.Options.min_support ~stream ~windows ~exec_counts
      ~threshold:o.Options.threshold ()
  in
  (* Step 3: link-time injection. *)
  let instrumented, _remap, injection =
    Injector.inject ~mode:o.Options.mode ~skip_jit:o.Options.skip_jit
      ~max_hints_per_block:o.Options.max_hints_per_block ~program ~decisions ()
  in
  (* Optional step 4: static verification of the instrumented binary
     (the `ripple-sim lint` pass as a pipeline gate). *)
  let lint =
    if o.Options.verify then
      Some
        (Lint.check_program ~geometry:config.Config.l1i
           ~provenance:(provenance_of_stats injection) instrumented)
    else None
  in
  ( instrumented,
    {
      threshold = o.Options.threshold;
      n_windows = Array.length windows;
      n_decisions = List.length decisions;
      drops;
      injection;
      lint;
    } )

type evaluation = {
  result : Simulator.result;
  coverage : float;
  accuracy : float;
  hint_execs : int;
  static_overhead : float;
  dynamic_overhead : float;
}

module Json = Ripple_util.Json

let evaluation_to_json (ev : evaluation) =
  Json.Obj
    [
      ("result", Simulator.result_to_json ev.result);
      ("coverage", Json.Float ev.coverage);
      ("accuracy", Json.Float ev.accuracy);
      ("hint_execs", Json.Int ev.hint_execs);
      ("static_overhead", Json.Float ev.static_overhead);
      ("dynamic_overhead", Json.Float ev.dynamic_overhead);
    ]

let overhead ~extra ~base = if base = 0 then 0.0 else Float.of_int extra /. Float.of_int base

let evaluate ?(config = Config.default) ?(warmup = 0) ~original ~instrumented ~trace ~policy
    ~prefetch () =
  (* Ideal eviction windows on the evaluation stream of the instrumented
     binary, in trace coordinates: the accuracy yardstick. *)
  let stream, stream_pos =
    Simulator.record_stream_indexed ~config ~program:instrumented ~trace
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let replay = Belady.simulate config.Config.l1i ~mode:(belady_mode_of prefetch) stream in
  let windows =
    Eviction_window.to_trace_coords (Eviction_window.of_evictions replay.Belady.evictions)
      ~stream_pos
  in
  let index = Eviction_window.Index.create windows in
  let hint_execs = ref 0 in
  let accurate = ref 0 in
  let on_hint ~at hint ~resident =
    if at >= warmup then begin
    incr hint_execs;
    (* A hint that fires inside one of its victim's ideal windows evicts a
       line the ideal policy would evict too; one that finds the line
       absent cannot introduce a miss either. *)
    let line = Basic_block.hint_line hint in
    if (not resident) || Eviction_window.Index.mem index ~line ~at then incr accurate
    end
  in
  let result =
    Simulator.run ~config ~warmup ~on_hint ~program:instrumented ~trace ~policy
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let accuracy =
    if !hint_execs = 0 then 1.0 else Float.of_int !accurate /. Float.of_int !hint_execs
  in
  {
    result;
    coverage = Ripple_cache.Stats.coverage result.Simulator.l1i;
    accuracy;
    hint_execs = !hint_execs;
    static_overhead =
      overhead
        ~extra:(Program.static_instrs instrumented - Program.static_instrs original)
        ~base:(Program.static_instrs original);
    dynamic_overhead =
      overhead ~extra:result.Simulator.hint_instructions
        ~base:(result.Simulator.instructions - result.Simulator.hint_instructions);
  }

let search_threshold ?(config = Config.default) ?(warmup = 0)
    ?(candidates = [ 0.45; 0.55; 0.65 ]) ?(mode = Options.default.Options.mode)
    ?(exclude_prefetch_covered = Options.default.Options.exclude_prefetch_covered) ~program
    ~profile_trace ~eval_trace ~policy ~prefetch () =
  assert (candidates <> []);
  let best = ref None in
  List.iter
    (fun threshold ->
      let instrumented, _ =
        instrument_with
          { Options.default with config; threshold; mode; exclude_prefetch_covered }
          ~program ~profile_trace ~prefetch
      in
      let ev =
        evaluate ~config ~warmup ~original:program ~instrumented ~trace:eval_trace ~policy
          ~prefetch ()
      in
      match !best with
      | Some (_, b) when b.result.Simulator.ipc >= ev.result.Simulator.ipc -> ()
      | _ -> best := Some (threshold, ev))
    candidates;
  match !best with Some r -> r | None -> assert false
