module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Belady = Ripple_cache.Belady
module Pt = Ripple_trace.Pt
module Bb_trace = Ripple_trace.Bb_trace
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module Obs = Ripple_obs

type prefetch = No_prefetch | Nlp | Fdip

let prefetch_name = function No_prefetch -> "none" | Nlp -> "nlp" | Fdip -> "fdip"

let prefetcher_of ?config prefetch program =
  match prefetch with
  | No_prefetch -> Simulator.prefetcher_none program
  | Nlp -> Simulator.prefetcher_nlp ?config program
  | Fdip -> Simulator.prefetcher_fdip ?config program

let belady_mode_of = function No_prefetch -> Belady.Min | Nlp | Fdip -> Belady.Demand_min

module Lint = Ripple_analysis.Lint
module Invalidation_check = Ripple_analysis.Invalidation_check
module Abs_cache = Ripple_analysis.Abs_cache
module Json = Ripple_util.Json
module Access_stream = Ripple_cache.Access_stream
module Int_stream = Ripple_util.Int_stream

module Degrade = struct
  type level = Full | Safe_only | Hints_off

  let level_name = function Full -> "full" | Safe_only -> "safe-only" | Hints_off -> "off"

  type t = {
    level : level;
    fingerprint_ok : bool;
    salvage : float;
    drift : float;
    stripped : int;
  }

  let full = { level = Full; fingerprint_ok = true; salvage = 1.0; drift = 0.0; stripped = 0 }

  let to_json t =
    Json.Obj
      [
        ("level", Json.String (level_name t.level));
        ("fingerprint_ok", Json.Bool t.fingerprint_ok);
        ("salvage", Json.Float t.salvage);
        ("drift", Json.Float t.drift);
        ("stripped", Json.Int t.stripped);
      ]
end

type analysis = {
  threshold : float;
  n_windows : int;
  n_decisions : int;
  drops : Cue_block.drops;
  injection : Injector.stats;
  lint : Lint.summary option;
  degrade : Degrade.t;
}

module Eval = struct
  type t = {
    trace : Simulator.Trace.t;
    policy : Ripple_cache.Policy.factory;
    warmup : int;
  }

  let v_trace ?(warmup = 0) ~trace ~policy () = { trace; policy; warmup }

  let v ?warmup ~trace ~policy () =
    v_trace ?warmup ~trace:(Simulator.Trace.Blocks trace) ~policy ()
end

module Options = struct
  type t = {
    config : Config.t;
    threshold : float;
    mode : Injector.mode;
    skip_jit : bool;
    max_hints_per_block : int;
    scan_limit : int;
    min_support : int;
    exclude_prefetch_covered : bool;
    pt_roundtrip : bool;
    verify : bool;
    degrade : bool;
    proven_safe : bool;
    min_salvage : float;
    drift_safe : float;
    drift_off : float;
    prefetch : prefetch;
    eval : Eval.t option;
    search : float list;
    backing : Access_stream.backing;
    sampling : Simulator.Sampling.t option;
  }

  let default =
    {
      config = Config.default;
      threshold = 0.5;
      mode = Injector.Invalidate;
      skip_jit = true;
      max_hints_per_block = Injector.default_max_hints_per_block;
      scan_limit = Cue_block.default_scan_limit;
      min_support = Cue_block.default_min_support;
      exclude_prefetch_covered = false;
      pt_roundtrip = true;
      verify = false;
      degrade = false;
      proven_safe = false;
      min_salvage = 0.5;
      drift_safe = 0.02;
      drift_off = 0.15;
      prefetch = Fdip;
      eval = None;
      search = [];
      backing = Access_stream.Heap;
      sampling = None;
    }
end

(* Below this salvage ratio a profile is considered partial enough that
   only statically-verified-safe hints may survive. *)
let safe_salvage = 0.95

type profile = {
  trace : int array;
  source : Program.t;
  salvage : float;
  pt_errors : int;
}

type input =
  | Trace of int array
  | Pt_bytes of bytes
  | Pt_session of Pt.Session.t
  | Profile of profile

let profile_of_recovery ~source (r : Pt.recovery) =
  { trace = r.Pt.trace; source; salvage = r.Pt.salvage; pt_errors = List.length r.Pt.errors }

let profile_of ~source = function
  | Trace trace -> { trace; source; salvage = 1.0; pt_errors = 0 }
  | Pt_bytes data -> profile_of_recovery ~source (Pt.decode_result source data)
  | Pt_session s -> profile_of_recovery ~source (Pt.Session.result s)
  | Profile p -> p

let provenance_of_stats (s : Injector.stats) =
  List.map
    (fun (p : Injector.placement) ->
      {
        Lint.block = p.Injector.block;
        line = p.Injector.line;
        probability = p.Injector.probability;
        windows = p.Injector.windows;
      })
    s.Injector.placements

let no_drops =
  {
    Cue_block.windows_total = 0;
    no_candidate = 0;
    below_support = 0;
    below_threshold = 0;
    selected = 0;
  }

let no_injection =
  { Injector.injected = 0; skipped_jit = 0; skipped_cap = 0; blocks_touched = 0; placements = [] }

(* ------------------------- the metric vocabulary ------------------------- *)

(* One record of metric cells per run, resolved once so stage code holds
   cells, not names.  Registration is find-or-create and covers the
   whole vocabulary up front (including the simulator family), so every
   outcome snapshot carries the complete schema regardless of which
   branches executed — the invariant docs/metrics.schema is checked
   against. *)
module Metrics = struct
  type t = {
    decode_blocks : Obs.Metric.counter;
    decode_errors : Obs.Metric.counter;
    decode_salvage : Obs.Metric.gauge;
    profile_drift : Obs.Metric.gauge;
    degrade_level : Obs.Metric.gauge;
    profile_accesses : Obs.Metric.counter;
    belady_windows : Obs.Metric.counter;
    belady_window_blocks : Obs.Metric.histogram;
    cue_no_candidate : Obs.Metric.counter;
    cue_below_support : Obs.Metric.counter;
    cue_below_threshold : Obs.Metric.counter;
    cue_selected : Obs.Metric.counter;
    cue_decisions : Obs.Metric.counter;
    cue_probability : Obs.Metric.histogram;
    inject_hints : Obs.Metric.counter;
    inject_stripped : Obs.Metric.counter;
    inject_skipped_jit : Obs.Metric.counter;
    inject_skipped_cap : Obs.Metric.counter;
    inject_blocks_touched : Obs.Metric.counter;
    lint_errors : Obs.Metric.counter;
    lint_warnings : Obs.Metric.counter;
    lint_infos : Obs.Metric.counter;
    lint_must_hit_sites : Obs.Metric.counter;
    lint_always_miss_sites : Obs.Metric.counter;
    lint_first_miss_lines : Obs.Metric.counter;
    lint_persistent_sets : Obs.Metric.counter;
    lint_proved_safe_hints : Obs.Metric.counter;
    lint_proved_harmful_hints : Obs.Metric.counter;
    lint_disagreements : Obs.Metric.counter;
    lint_mpki_lower : Obs.Metric.gauge;
    lint_mpki_upper : Obs.Metric.gauge;
    lint_min_ways : Obs.Metric.gauge;
    eval_coverage : Obs.Metric.gauge;
    eval_accuracy : Obs.Metric.gauge;
    eval_hint_execs : Obs.Metric.counter;
    sample_windows : Obs.Metric.counter;
    sample_measured_blocks : Obs.Metric.counter;
    sample_coverage : Obs.Metric.gauge;
    stream_backing : Obs.Metric.gauge;
    stream_spill_bytes : Obs.Metric.counter;
  }

  let register reg =
    let c name help = Obs.Registry.counter reg ~help name in
    let g name help = Obs.Registry.gauge reg ~help name in
    let h name bounds help = Obs.Registry.histogram reg ~help ~bounds name in
    Simulator.register_obs reg;
    {
      decode_blocks = c "ripple_decode_blocks" "basic blocks recovered from the capture";
      decode_errors = c "ripple_decode_errors" "decode errors survived by resynchronization";
      decode_salvage = g "ripple_decode_salvage" "fraction of the capture recovered";
      profile_drift = g "ripple_profile_drift" "illegal-transition fraction vs the target CFG";
      degrade_level = g "ripple_degrade_level" "ladder rung: 0 full, 1 safe-only, 2 off";
      profile_accesses = c "ripple_profile_accesses" "recorded profile access-stream entries";
      belady_windows = c "ripple_belady_windows" "ideal-policy eviction windows";
      belady_window_blocks =
        h "ripple_belady_window_blocks"
          [ 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0 ]
          "eviction-window length in stream entries";
      cue_no_candidate = c "ripple_cue_windows_no_candidate" "windows with no cue candidate";
      cue_below_support = c "ripple_cue_windows_below_support" "windows under min support";
      cue_below_threshold =
        c "ripple_cue_windows_below_threshold" "windows under the probability threshold";
      cue_selected = c "ripple_cue_windows_selected" "windows covered by a selected cue";
      cue_decisions = c "ripple_cue_decisions" "deduplicated (cue, victim) decisions";
      cue_probability =
        h "ripple_cue_probability"
          [ 0.2; 0.4; 0.5; 0.6; 0.8; 0.9 ]
          "conditional eviction probability of selected cues";
      inject_hints = c "ripple_inject_hints" "hints present in the shipped binary";
      inject_stripped = c "ripple_inject_stripped" "hints removed by the safe-only filter";
      inject_skipped_jit = c "ripple_inject_skipped_jit" "decisions dropped in JIT code";
      inject_skipped_cap = c "ripple_inject_skipped_cap" "decisions over the per-block cap";
      inject_blocks_touched = c "ripple_inject_blocks_touched" "blocks that received a hint";
      lint_errors = c "ripple_lint_errors" "static-verifier errors on the shipped binary";
      lint_warnings = c "ripple_lint_warnings" "static-verifier warnings";
      lint_infos = c "ripple_lint_infos" "static-verifier infos";
      lint_must_hit_sites =
        c "ripple_lint_must_hit_sites" "access sites the abstract analysis proves always hit";
      lint_always_miss_sites =
        c "ripple_lint_always_miss_sites" "access sites proved to always miss from a cold start";
      lint_first_miss_lines =
        c "ripple_lint_first_miss_lines" "lines proved to miss at most once";
      lint_persistent_sets =
        c "ripple_lint_persistent_sets" "cache sets whose reachable lines all fit";
      lint_proved_safe_hints =
        c "ripple_lint_proved_safe_hints" "hints with a positive abstract safety proof";
      lint_proved_harmful_hints =
        c "ripple_lint_proved_harmful_hints" "hints proved to convert a hit to a miss";
      lint_disagreements =
        c "ripple_lint_disagreements" "classifier cross-check contradictions";
      lint_mpki_lower = g "ripple_lint_mpki_lower" "static lower bound on demand MPKI";
      lint_mpki_upper = g "ripple_lint_mpki_upper" "static upper bound on demand MPKI";
      lint_min_ways =
        g "ripple_lint_min_ways" "minimal associativity covering the dominant blocks";
      eval_coverage = g "ripple_eval_coverage" "replacement coverage of the evaluated run";
      eval_accuracy = g "ripple_eval_accuracy" "replacement accuracy of the evaluated run";
      eval_hint_execs = c "ripple_eval_hint_execs" "dynamic hint executions while evaluated";
      sample_windows = c "ripple_sample_windows" "measurement windows of a sampled run";
      sample_measured_blocks =
        c "ripple_sample_measured_blocks" "trace blocks inside measured windows";
      sample_coverage = g "ripple_sample_coverage" "measured fraction of the steady state";
      stream_backing = g "ripple_stream_backing" "access-stream backing: 0 heap, 1 mmap";
      stream_spill_bytes = c "ripple_stream_spill_bytes" "bytes written to stream spill files";
    }
end

let stage obs name f = Obs.Span.with_span (Obs.Run.spans obs) name f

(* Safe-only mode: classify every injected hint on the instrumented
   binary and strip the ones the static analysis cannot prove harmless
   (Harmful or Redundant), keeping injection stats and provenance in
   step.  With [proven_safe] the gate inverts from a denylist to an
   allowlist: only hints the abstract interpretation *positively
   proves* safe (dead, persistent-set, or pressure verdicts) survive —
   not-flagged is no longer good enough.  Placements are ordered
   block-ascending then by within-block injection order, matching each
   block's hint array — so the (block, hint-index) key filters both
   consistently. *)
let strip_unsafe ~(config : Config.t) ~proven_safe instrumented (injection : Injector.stats) =
  let unsafe = Hashtbl.create 16 in
  if proven_safe then
    List.iter
      (fun ((site : Invalidation_check.site), _cls, verdict) ->
        if not (Abs_cache.proved_safe verdict) then
          Hashtbl.replace unsafe (site.Invalidation_check.block, site.Invalidation_check.index) ())
      (Invalidation_check.classify_proved ~geometry:config.Config.l1i
         ~entry:(Program.entry instrumented) (Program.blocks instrumented))
  else
    List.iter
      (fun ((site : Invalidation_check.site), cls) ->
        match cls with
        | Invalidation_check.Harmful _ | Invalidation_check.Redundant _ ->
          Hashtbl.replace unsafe (site.Invalidation_check.block, site.Invalidation_check.index) ()
        | Invalidation_check.Safe_dead | Invalidation_check.Safe_pressure -> ())
      (Invalidation_check.classify ~geometry:config.Config.l1i
         ~entry:(Program.entry instrumented) (Program.blocks instrumented));
  if Hashtbl.length unsafe = 0 then (instrumented, injection, 0)
  else begin
    let stripped = Hashtbl.length unsafe in
    let hints =
      Array.mapi
        (fun b (blk : Basic_block.t) ->
          List.filteri
            (fun i _ -> not (Hashtbl.mem unsafe (b, i)))
            (Array.to_list blk.Basic_block.hints))
        (Program.blocks instrumented)
    in
    let program, _remap = Program.with_hints instrumented ~hints in
    let counters = Hashtbl.create 16 in
    let placements =
      List.filter
        (fun (p : Injector.placement) ->
          let b = p.Injector.block in
          let i = Option.value (Hashtbl.find_opt counters b) ~default:0 in
          Hashtbl.replace counters b (i + 1);
          not (Hashtbl.mem unsafe (b, i)))
        injection.Injector.placements
    in
    let blocks_touched = Array.fold_left (fun acc h -> if h <> [] then acc + 1 else acc) 0 hints in
    let injection =
      {
        injection with
        Injector.injected = injection.Injector.injected - stripped;
        blocks_touched;
        placements;
      }
    in
    (program, injection, stripped)
  end

type evaluation = {
  result : Simulator.result;
  coverage : float;
  accuracy : float;
  hint_execs : int;
  static_overhead : float;
  dynamic_overhead : float;
  sample : Simulator.Sampling.report option;
}

let evaluation_to_json (ev : evaluation) =
  Json.Obj
    ([
       ("result", Simulator.result_to_json ev.result);
       ("coverage", Json.Float ev.coverage);
       ("accuracy", Json.Float ev.accuracy);
       ("hint_execs", Json.Int ev.hint_execs);
       ("static_overhead", Json.Float ev.static_overhead);
       ("dynamic_overhead", Json.Float ev.dynamic_overhead);
     ]
    @
    match ev.sample with
    | None -> []
    | Some r -> [ ("sample", Simulator.Sampling.report_to_json r) ])

let overhead ~extra ~base = if base = 0 then 0.0 else Float.of_int extra /. Float.of_int base

(* Instrumented-run evaluation (the paper's metrics).  The core of the
   legacy [evaluate] entry point, shared with [run]'s simulate stage;
   [obs], when present, routes the timing simulation's counters and the
   Ripple accuracy/coverage gauges into the run's registry. *)
let eval_core ?obs ?(backing = Access_stream.Heap) ?sampling ~(config : Config.t) ~warmup
    ~original ~instrumented ~(trace : Simulator.Trace.t) ~policy ~prefetch () =
  (* Ideal eviction windows on the evaluation stream of the instrumented
     binary, in trace coordinates: the accuracy yardstick.  With a spill
     backing, the stream, its position index and the Belady working
     tables all live in mmap files — the heap cost of this stage stays
     O(windows), not O(trace). *)
  let stream, stream_pos =
    Simulator.record_stream_indexed_trace ~config ~backing ~program:instrumented ~trace
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let windows =
    let tables = Belady.prepare ~backing stream in
    let replay =
      Fun.protect
        ~finally:(fun () -> Belady.close_tables tables)
        (fun () -> Belady.simulate ~tables config.Config.l1i ~mode:(belady_mode_of prefetch) stream)
    in
    Eviction_window.to_trace_coords_with
      (Eviction_window.of_evictions replay.Belady.evictions)
      ~pos:(Int_stream.get stream_pos)
  in
  Access_stream.close stream;
  Int_stream.close stream_pos;
  let index = Eviction_window.Index.create windows in
  let hint_execs = ref 0 in
  let accurate = ref 0 in
  let on_hint ~at hint ~resident =
    if at >= warmup then begin
      incr hint_execs;
      (* A hint that fires inside one of its victim's ideal windows evicts a
         line the ideal policy would evict too; one that finds the line
         absent cannot introduce a miss either. *)
      let line = Basic_block.hint_line hint in
      if (not resident) || Eviction_window.Index.mem index ~line ~at then incr accurate
    end
  in
  let result, sample =
    Simulator.run_trace ~config ~warmup ?obs ~on_hint ?sampling ~program:instrumented ~trace
      ~policy
      ~prefetcher:(prefetcher_of ~config prefetch)
      ()
  in
  let accuracy =
    if !hint_execs = 0 then 1.0 else Float.of_int !accurate /. Float.of_int !hint_execs
  in
  let ev =
    {
      result;
      coverage = Ripple_cache.Stats.coverage result.Simulator.l1i;
      accuracy;
      hint_execs = !hint_execs;
      static_overhead =
        overhead
          ~extra:(Program.static_instrs instrumented - Program.static_instrs original)
          ~base:(Program.static_instrs original);
      dynamic_overhead =
        overhead ~extra:result.Simulator.hint_instructions
          ~base:(result.Simulator.instructions - result.Simulator.hint_instructions);
      sample;
    }
  in
  (match obs with
  | None -> ()
  | Some obs ->
    let m = Metrics.register (Obs.Run.registry obs) in
    Obs.Metric.set m.Metrics.eval_coverage ev.coverage;
    Obs.Metric.set m.Metrics.eval_accuracy ev.accuracy;
    Obs.Metric.add m.Metrics.eval_hint_execs ev.hint_execs;
    match sample with
    | None -> ()
    | Some (r : Simulator.Sampling.report) ->
      Obs.Metric.add m.Metrics.sample_windows (Array.length r.Simulator.Sampling.spans);
      Obs.Metric.add m.Metrics.sample_measured_blocks r.Simulator.Sampling.measured_blocks;
      Obs.Metric.set m.Metrics.sample_coverage r.Simulator.Sampling.coverage);
  ev

type outcome = {
  program : Program.t;
  analysis : analysis;
  evaluation : evaluation option;
  obs : Obs.Run.t;
  metrics : Obs.Snapshot.t;
}

let degrade_level_code = function
  | Degrade.Full -> 0.0
  | Degrade.Safe_only -> 1.0
  | Degrade.Hints_off -> 2.0

(* One end-to-end run at a fixed threshold: the six instrumented stages
   (decode → profile → belady → cue-select → inject → simulate), each a
   span in [obs] with its counters. *)
let run_one ~obs ~(m : Metrics.t) (o : Options.t) ~source input =
  let config = o.Options.config in
  let prefetch = o.Options.prefetch in
  (* Stage 1 (Fig. 4): runtime profiling.  The analysis consumes what
     hardware tracing can reconstruct — raw traces pass through the
     PT-style codec round trip unless the caller opted out (stitched LBR
     samples are not a single legal path). *)
  let profile =
    stage obs "decode" (fun () ->
        match input with
        | Trace t when o.Options.pt_roundtrip ->
          profile_of ~source (Pt_bytes (Pt.encode source t))
        | (Trace _ | Pt_bytes _ | Pt_session _ | Profile _) as input -> profile_of ~source input)
  in
  Obs.Metric.add m.Metrics.decode_blocks (Array.length profile.trace);
  Obs.Metric.add m.Metrics.decode_errors profile.pt_errors;
  Obs.Metric.set m.Metrics.decode_salvage profile.salvage;
  let fingerprint_ok =
    Program.layout_fingerprint profile.source = Program.layout_fingerprint source
  in
  (* Drift is measured against the binary about to be instrumented: the
     fraction of profile transitions its CFG cannot produce. *)
  let drift = if o.Options.degrade then Bb_trace.drift source profile.trace else 0.0 in
  let level =
    if not o.Options.degrade then Degrade.Full
    else if profile.salvage < o.Options.min_salvage || drift > o.Options.drift_off then
      Degrade.Hints_off
    else if (not fingerprint_ok) || drift > o.Options.drift_safe || profile.salvage < safe_salvage
    then Degrade.Safe_only
    else Degrade.Full
  in
  Obs.Metric.set m.Metrics.profile_drift drift;
  Obs.Metric.set m.Metrics.degrade_level (degrade_level_code level);
  let degrade_record ~stripped =
    { Degrade.level; fingerprint_ok; salvage = profile.salvage; drift; stripped }
  in
  let instrumented, analysis =
    match level with
    | Degrade.Hints_off ->
      (* The profile is not trustworthy enough to act on at all: ship the
         binary untouched, so behaviour is exactly the baseline policy. *)
      ( source,
        {
          threshold = o.Options.threshold;
          n_windows = 0;
          n_decisions = 0;
          drops = no_drops;
          injection = no_injection;
          lint = None;
          degrade = degrade_record ~stripped:0;
        } )
    | Degrade.Full | Degrade.Safe_only ->
      (* Step 2 (Fig. 4): ideal-policy replay over the stream the
         prefetcher produces on the profiled layout, yielding eviction
         windows. *)
      let stream =
        stage obs "profile" (fun () ->
            let stream, pos =
              Simulator.record_stream_indexed_trace ~config ~backing:o.Options.backing
                ~program:profile.source
                ~trace:(Simulator.Trace.Blocks profile.trace)
                ~prefetcher:(prefetcher_of ~config prefetch)
                ()
            in
            Int_stream.close pos;
            stream)
      in
      Obs.Metric.add m.Metrics.profile_accesses (Access_stream.length stream);
      let windows =
        stage obs "belady" (fun () ->
            let tables = Belady.prepare ~backing:o.Options.backing stream in
            let replay =
              Fun.protect
                ~finally:(fun () -> Belady.close_tables tables)
                (fun () ->
                  Belady.simulate ~tables config.Config.l1i ~mode:(belady_mode_of prefetch)
                    stream)
            in
            Eviction_window.of_evictions
              ~demand_covered_only:o.Options.exclude_prefetch_covered replay.Belady.evictions)
      in
      Obs.Metric.add m.Metrics.belady_windows (Array.length windows);
      Array.iter
        (fun (w : Eviction_window.t) ->
          Obs.Metric.observe m.Metrics.belady_window_blocks
            (Float.of_int (w.Eviction_window.stop - w.Eviction_window.start)))
        windows;
      (* Per-block execution counts from the profile, shared by cue
         selection and the lint gate's static MPKI bounds. *)
      let exec_counts = Bb_trace.exec_counts profile.source profile.trace in
      let decisions, drops =
        stage obs "cue-select" (fun () ->
            let decisions, drops =
              Cue_block.analyze_report ~scan_limit:o.Options.scan_limit
                ~min_support:o.Options.min_support ~stream ~windows ~exec_counts
                ~threshold:o.Options.threshold ()
            in
            (* Injection targets the binary being shipped, which may not
               be the layout the profile was collected on: decisions past
               its block count cannot land. *)
            ( List.filter
                (fun (d : Cue_block.decision) ->
                  d.Cue_block.cue_block < Program.n_blocks source)
                decisions,
              drops ))
      in
      (* The profile stream (possibly spill-backed) is not needed past
         cue selection: release it — and unlink its spill file — now. *)
      Access_stream.close stream;
      Obs.Metric.add m.Metrics.cue_no_candidate drops.Cue_block.no_candidate;
      Obs.Metric.add m.Metrics.cue_below_support drops.Cue_block.below_support;
      Obs.Metric.add m.Metrics.cue_below_threshold drops.Cue_block.below_threshold;
      Obs.Metric.add m.Metrics.cue_selected drops.Cue_block.selected;
      Obs.Metric.add m.Metrics.cue_decisions (List.length decisions);
      List.iter
        (fun (d : Cue_block.decision) ->
          Obs.Metric.observe m.Metrics.cue_probability d.Cue_block.probability)
        decisions;
      (* Step 3: link-time injection, then (in safe-only mode) the
         static stripper, then the optional lint gate. *)
      stage obs "inject" (fun () ->
          let instrumented, _remap, injection =
            Injector.inject ~mode:o.Options.mode ~skip_jit:o.Options.skip_jit
              ~max_hints_per_block:o.Options.max_hints_per_block ~program:source ~decisions ()
          in
          let instrumented, injection, stripped =
            match level with
            | Degrade.Safe_only ->
              strip_unsafe ~config ~proven_safe:o.Options.proven_safe instrumented injection
            | Degrade.Full | Degrade.Hints_off -> (instrumented, injection, 0)
          in
          let lint =
            if o.Options.verify then
              Some
                (Lint.check_program ~geometry:config.Config.l1i
                   ~provenance:(provenance_of_stats injection) ~exec_counts ~obs instrumented)
            else None
          in
          Obs.Metric.add m.Metrics.inject_hints injection.Injector.injected;
          Obs.Metric.add m.Metrics.inject_stripped stripped;
          Obs.Metric.add m.Metrics.inject_skipped_jit injection.Injector.skipped_jit;
          Obs.Metric.add m.Metrics.inject_skipped_cap injection.Injector.skipped_cap;
          Obs.Metric.add m.Metrics.inject_blocks_touched injection.Injector.blocks_touched;
          (match lint with
          | None -> ()
          | Some s ->
            Obs.Metric.add m.Metrics.lint_errors s.Lint.errors;
            Obs.Metric.add m.Metrics.lint_warnings s.Lint.warnings;
            Obs.Metric.add m.Metrics.lint_infos s.Lint.infos;
            Obs.Metric.add m.Metrics.lint_proved_safe_hints (Lint.proved_safe s.Lint.proofs);
            Obs.Metric.add m.Metrics.lint_proved_harmful_hints
              s.Lint.proofs.Lint.proved_harmful;
            Obs.Metric.add m.Metrics.lint_disagreements s.Lint.proofs.Lint.disagreements;
            (match s.Lint.abstract with
            | None -> ()
            | Some a ->
              Obs.Metric.add m.Metrics.lint_must_hit_sites a.Abs_cache.must_hit_sites;
              Obs.Metric.add m.Metrics.lint_always_miss_sites a.Abs_cache.always_miss_sites;
              Obs.Metric.add m.Metrics.lint_first_miss_lines a.Abs_cache.first_miss_lines;
              Obs.Metric.add m.Metrics.lint_persistent_sets a.Abs_cache.persistent_sets;
              (match a.Abs_cache.bounds with
              | None -> ()
              | Some (b : Abs_cache.bounds) ->
                Obs.Metric.set m.Metrics.lint_mpki_lower b.Abs_cache.mpki_lower;
                Obs.Metric.set m.Metrics.lint_mpki_upper b.Abs_cache.mpki_upper);
              (match a.Abs_cache.min_geometry with
              | None -> ()
              | Some (mg : Abs_cache.min_geometry) ->
                Obs.Metric.set m.Metrics.lint_min_ways (Float.of_int mg.Abs_cache.min_ways))));
          ( instrumented,
            {
              threshold = o.Options.threshold;
              n_windows = Array.length windows;
              n_decisions = List.length decisions;
              drops;
              injection;
              lint;
              degrade = degrade_record ~stripped;
            } ))
  in
  let evaluation =
    match o.Options.eval with
    | None -> None
    | Some (e : Eval.t) ->
      Some
        (stage obs "simulate" (fun () ->
             eval_core ~obs ~backing:o.Options.backing ?sampling:o.Options.sampling ~config
               ~warmup:e.Eval.warmup ~original:source ~instrumented ~trace:e.Eval.trace
               ~policy:e.Eval.policy ~prefetch ()))
  in
  { program = instrumented; analysis; evaluation; obs; metrics = Obs.Snapshot.empty }

let register_metrics reg = ignore (Metrics.register reg : Metrics.t)

let run ?obs (o : Options.t) ~source input =
  let obs = match obs with Some obs -> obs | None -> Obs.Run.create () in
  let m = Metrics.register (Obs.Run.registry obs) in
  let outcome =
    match o.Options.search with
    | [] -> run_one ~obs ~m o ~source input
    | candidates ->
      if o.Options.eval = None then
        invalid_arg "Pipeline.run: Options.search requires Options.eval";
      (* Per-application threshold selection (§III-C): one sub-run per
         candidate under a [search] span, best IPC winning, first
         candidate winning ties.  Counters accumulate across candidates
         (the registry is per run, not per candidate). *)
      stage obs "search" (fun () ->
          let best = ref None in
          List.iter
            (fun threshold ->
              let oc =
                run_one ~obs ~m { o with Options.threshold; search = [] } ~source input
              in
              let ipc =
                match oc.evaluation with
                | Some ev -> ev.result.Simulator.ipc
                | None -> assert false
              in
              match !best with
              | Some (best_ipc, _) when best_ipc >= ipc -> ()
              | _ -> best := Some (ipc, oc))
            candidates;
          match !best with Some (_, oc) -> oc | None -> assert false)
  in
  { outcome with metrics = Obs.Run.snapshot obs }
