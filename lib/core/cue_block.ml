module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream

type decision = { cue_block : int; victim : int; probability : float; windows : int }

let default_scan_limit = 48
let default_step_limit = 4096
let default_min_support = 3

(* Visit a window's candidate cue blocks: each distinct executed
   (demand) block, scanning from both ends of the window — the blocks
   executed right after the victim's last use (its own continuation,
   typically the strongest predictors) and the blocks leading up to the
   eviction.  Bounded by the scan/step limits; [seen] is caller-provided
   scratch (cleared here). *)
let walk_window ~scan_limit ~step_limit (stream : Access_stream.t) (w : Eviction_window.t)
    ~seen f =
  Hashtbl.reset seen;
  let visit (acc : Access.packed) =
    if Access.packed_is_demand acc then begin
      let block = Access.packed_block acc in
      if not (Hashtbl.mem seen block) then begin
        Hashtbl.add seen block ();
        f block
      end
    end
  in
  let half_scan = max 1 (scan_limit / 2) and half_step = max 1 (step_limit / 2) in
  let start = w.Eviction_window.start and stop = w.Eviction_window.stop in
  (* Forward from just after the last use. *)
  let steps = ref 0 in
  let i = ref (start + 1) in
  while !i <= stop && !steps < half_step && Hashtbl.length seen < half_scan do
    visit (Access_stream.get stream !i);
    incr steps;
    incr i
  done;
  (* Backward from the eviction trigger, stopping where the forward scan
     ended. *)
  let fwd_end = !i in
  steps := 0;
  let j = ref stop in
  while !j >= fwd_end && !steps < half_step && Hashtbl.length seen < scan_limit do
    visit (Access_stream.get stream !j);
    incr steps;
    decr j
  done

(* (victim line, block) -> number of distinct windows containing the
   block.  Lines fit well under 2^40 and block ids under 2^22, so the
   pair packs into one int key. *)
let pack ~victim ~block = (victim lsl 22) lor block

type drops = {
  windows_total : int;
  no_candidate : int;
  below_support : int;
  below_threshold : int;
  selected : int;
}

let analyze_report ?(scan_limit = default_scan_limit) ?(step_limit = default_step_limit)
    ?(min_support = default_min_support) ~stream ~windows ~exec_counts ~threshold () =
  let window_counts = Hashtbl.create (4 * Array.length windows) in
  let seen = Hashtbl.create 64 in
  (* Pass 1: per-pair window membership counts. *)
  Array.iter
    (fun (w : Eviction_window.t) ->
      walk_window ~scan_limit ~step_limit stream w ~seen (fun block ->
          let key = pack ~victim:w.Eviction_window.victim ~block in
          match Hashtbl.find_opt window_counts key with
          | Some n -> Hashtbl.replace window_counts key (n + 1)
          | None -> Hashtbl.add window_counts key 1))
    windows;
  (* Pass 2: pick each window's best candidate and keep it when it clears
     the threshold; windows that do not land in a decision are counted by
     the reason they fell out. *)
  let chosen = Hashtbl.create 4096 in
  let no_candidate = ref 0 and below_support = ref 0 and below_threshold = ref 0 in
  let selected = ref 0 in
  Array.iter
    (fun (w : Eviction_window.t) ->
      let victim = w.Eviction_window.victim in
      let best_block = ref (-1) and best_p = ref (-1.0) in
      walk_window ~scan_limit ~step_limit stream w ~seen (fun block ->
          let execs = exec_counts.(block) in
          if execs > 0 then begin
            let count = try Hashtbl.find window_counts (pack ~victim ~block) with Not_found -> 0 in
            let p = Float.of_int count /. Float.of_int execs in
            if p > !best_p then begin
              best_p := p;
              best_block := block
            end
          end);
      if !best_block < 0 then incr no_candidate
      else if
        (try Hashtbl.find window_counts (pack ~victim ~block:!best_block) with Not_found -> 0)
        < min_support
      then incr below_support
      else if !best_p < threshold then incr below_threshold
      else begin
        incr selected;
        let key = pack ~victim ~block:!best_block in
        match Hashtbl.find_opt chosen key with
        | Some (block, victim, p, n) -> Hashtbl.replace chosen key (block, victim, p, n + 1)
        | None -> Hashtbl.add chosen key (!best_block, victim, !best_p, 1)
      end)
    windows;
  let decisions =
    Hashtbl.fold
      (fun _ (cue_block, victim, probability, windows) acc ->
        { cue_block; victim; probability; windows } :: acc)
      chosen []
  in
  ( decisions,
    {
      windows_total = Array.length windows;
      no_candidate = !no_candidate;
      below_support = !below_support;
      below_threshold = !below_threshold;
      selected = !selected;
    } )

let analyze ?scan_limit ?step_limit ?min_support ~stream ~windows ~exec_counts ~threshold () =
  fst
    (analyze_report ?scan_limit ?step_limit ?min_support ~stream ~windows ~exec_counts
       ~threshold ())
