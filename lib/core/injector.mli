(** Link-time hint injection (§III-C).

    Materialises cue-block decisions as [invalidate] (or [demote])
    instructions appended to their cue blocks.  Injection grows the
    binary, so the program is relaid out — exactly what happens at link
    time — and every victim-line operand is re-expressed in the final
    layout using the old→new address remap.  Blocks flagged as JIT code
    are skipped by default: their instruction addresses are not stable
    across executions, the reason the HHVM applications cap below 50 %
    coverage in Fig. 9. *)

module Program := Ripple_isa.Program
module Addr := Ripple_isa.Addr

type mode = Invalidate | Demote

(** One hint actually placed, with the decision evidence that justified
    it.  This is the provenance trail the static verifier
    ({!Ripple_analysis.Lint}) quotes when it flags a hint: [probability]
    is the selected conditional probability P(evict victim | exec
    block), [windows] the eviction-window support behind it.  [line] is
    the final (post-remap) operand, matching the instrumented binary. *)
type placement = {
  block : int;
  line : Addr.line;
  probability : float;
  windows : int;
}

type stats = {
  injected : int;  (** hints actually placed *)
  skipped_jit : int;  (** decisions dropped because the cue block is JIT *)
  skipped_cap : int;  (** decisions dropped by the per-block cap *)
  blocks_touched : int;
  placements : placement list;
      (** per-hint provenance, ordered by block id then descending
          probability (the within-block injection order) *)
}

val default_max_hints_per_block : int

val inject :
  ?mode:mode ->
  ?skip_jit:bool ->
  ?max_hints_per_block:int ->
  program:Program.t ->
  decisions:Cue_block.decision list ->
  unit ->
  Program.t * (Addr.t -> Addr.t) * stats
(** Returns the instrumented program, the old→new address remap, and
    injection statistics.  When a block attracts more decisions than the
    cap, the highest-probability ones win (each extra hint is straight
    static and dynamic overhead, §IV Figs. 11–12). *)
