(** Link-time hint injection (§III-C).

    Materialises cue-block decisions as [invalidate] (or [demote])
    instructions appended to their cue blocks.  Injection grows the
    binary, so the program is relaid out — exactly what happens at link
    time — and every victim-line operand is re-expressed in the final
    layout using the old→new address remap.  Blocks flagged as JIT code
    are skipped by default: their instruction addresses are not stable
    across executions, the reason the HHVM applications cap below 50 %
    coverage in Fig. 9. *)

module Program := Ripple_isa.Program
module Addr := Ripple_isa.Addr

type mode = Invalidate | Demote

type stats = {
  injected : int;  (** hints actually placed *)
  skipped_jit : int;  (** decisions dropped because the cue block is JIT *)
  skipped_cap : int;  (** decisions dropped by the per-block cap *)
  blocks_touched : int;
}

val default_max_hints_per_block : int

val inject :
  ?mode:mode ->
  ?skip_jit:bool ->
  ?max_hints_per_block:int ->
  program:Program.t ->
  decisions:Cue_block.decision list ->
  unit ->
  Program.t * (Addr.t -> Addr.t) * stats
(** Returns the instrumented program, the old→new address remap, and
    injection statistics.  When a block attracts more decisions than the
    cap, the highest-probability ones win (each extra hint is straight
    static and dynamic overhead, §IV Figs. 11–12). *)
