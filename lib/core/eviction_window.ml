module Addr = Ripple_isa.Addr
module Belady = Ripple_cache.Belady

type t = { victim : Addr.line; start : int; stop : int }

let of_evictions ?(demand_covered_only = false) evictions =
  let keep (e : Belady.eviction) =
    (not demand_covered_only) || e.Belady.next <> Belady.Next_prefetch
  in
  let kept = Array.of_list (List.filter keep (Array.to_list evictions)) in
  Array.map
    (fun (e : Belady.eviction) ->
      { victim = e.Belady.line; start = e.Belady.last_use; stop = e.Belady.at })
    kept

let to_trace_coords_with windows ~pos =
  Array.map (fun w -> { w with start = pos w.start; stop = pos w.stop }) windows

let to_trace_coords windows ~stream_pos = to_trace_coords_with windows ~pos:(Array.get stream_pos)

let count_for windows ~line =
  Array.fold_left (fun acc w -> if w.victim = line then acc + 1 else acc) 0 windows

module Index = struct
  type entry = { starts : int array; stops : int array; mutable cursor : int }
  type nonrec t = (Addr.line, entry) Hashtbl.t

  let create windows =
    let per_line = Hashtbl.create 4096 in
    Array.iter
      (fun w ->
        let existing = try Hashtbl.find per_line w.victim with Not_found -> [] in
        Hashtbl.replace per_line w.victim ((w.start, w.stop) :: existing))
      windows;
    let index = Hashtbl.create (Hashtbl.length per_line) in
    Hashtbl.iter
      (fun line intervals ->
        (* Windows of one line are disjoint; sort by start. *)
        let sorted = List.sort compare (List.rev intervals) in
        let starts = Array.of_list (List.map fst sorted) in
        let stops = Array.of_list (List.map snd sorted) in
        Hashtbl.replace index line { starts; stops; cursor = 0 })
      per_line;
    index

  let mem t ~line ~at =
    match Hashtbl.find_opt t line with
    | None -> false
    | Some e ->
      let n = Array.length e.starts in
      while e.cursor < n && e.stops.(e.cursor) < at do
        e.cursor <- e.cursor + 1
      done;
      (* [start] is inclusive here: a hint executes at the end of its
         block, i.e. after the block's own line accesses, so a firing in
         the very block that last used the victim is already past the
         use. *)
      e.cursor < n && e.starts.(e.cursor) <= at && at <= e.stops.(e.cursor)
  end
