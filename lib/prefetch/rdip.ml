module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Access = Ripple_cache.Access

let default_table_entries = 2048
let default_lines_per_signature = 6

let storage_bits ~table_entries ~lines_per_signature =
  table_entries * (16 + (lines_per_signature * 26))

let mix x =
  let x = x * 0x9E3779B1 in
  let x = x lxor (x lsr 16) in
  let x = x * 0xC2B2AE35 in
  x lxor (x lsr 13)

type entry = {
  mutable tag : int;
  lines : int array; (* -1 = free slot *)
  mutable cursor : int; (* round-robin replacement within the entry *)
}

let create ?(table_entries = default_table_entries)
    ?(lines_per_signature = default_lines_per_signature) ~program:_ () =
  assert (table_entries > 0 && table_entries land (table_entries - 1) = 0);
  let table =
    Array.init table_entries (fun _ ->
        { tag = -1; lines = Array.make lines_per_signature (-1); cursor = 0 })
  in
  (* The architectural call-stack context: a rolling hash of the call
     stack, pushed/popped in sync with calls and returns.  Depth-bounded
     like a real RAS. *)
  let stack = Array.make 32 0 in
  let depth = ref 0 in
  let signature = ref 0 in
  let resignature () =
    let s = ref 0 in
    for i = max 0 (!depth - 3) to !depth - 1 do
      s := mix (!s lxor stack.(i mod 32))
    done;
    signature := !s
  in
  let entry_of signature =
    let idx = mix signature land (table_entries - 1) in
    table.(idx)
  in
  let record_miss line =
    let e = entry_of !signature in
    if e.tag <> !signature then begin
      (* New owner: reset the line set. *)
      e.tag <- !signature;
      Array.fill e.lines 0 lines_per_signature (-1);
      e.cursor <- 0
    end;
    if not (Array.exists (fun l -> l = line) e.lines) then begin
      e.lines.(e.cursor) <- line;
      e.cursor <- (e.cursor + 1) mod lines_per_signature
    end
  in
  let prefetch_for_signature () =
    let e = entry_of !signature in
    if e.tag <> !signature then []
    else
      Array.fold_left
        (fun acc line -> if line >= 0 then Access.pack_prefetch ~line ~block:(-1) :: acc else acc)
        [] e.lines
  in
  let on_block (b : Basic_block.t) =
    match b.Basic_block.term with
    | Basic_block.Call { callee = _; return_to } | Basic_block.Indirect_call { return_to; _ } ->
      stack.(!depth mod 32) <- return_to;
      incr depth;
      resignature ();
      prefetch_for_signature ()
    | Basic_block.Return ->
      if !depth > 0 then decr depth;
      resignature ();
      prefetch_for_signature ()
    | Basic_block.Fallthrough _ | Basic_block.Jump _ | Basic_block.Cond _
    | Basic_block.Indirect _ | Basic_block.Halt ->
      []
  in
  let on_demand ~line ~missed =
    if missed then record_miss line;
    []
  in
  let save () =
    let table' =
      Array.map
        (fun e -> { tag = e.tag; lines = Array.copy e.lines; cursor = e.cursor })
        table
    in
    let stack' = Array.copy stack in
    let depth' = !depth and signature' = !signature in
    fun () ->
      Array.iteri
        (fun i e' ->
          let e = table.(i) in
          e.tag <- e'.tag;
          Array.blit e'.lines 0 e.lines 0 lines_per_signature;
          e.cursor <- e'.cursor)
        table';
      Array.blit stack' 0 stack 0 (Array.length stack);
      depth := depth';
      signature := signature'
  in
  { Prefetcher.name = "rdip"; on_block; on_demand; save }
