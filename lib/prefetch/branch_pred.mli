(** Branch prediction structures backing FDIP.

    A gshare conditional-direction predictor, a direct-mapped branch
    target buffer for indirect targets, and a return-address stack.  FDIP
    inherits its prefetch accuracy from these: direct unconditional
    branches are always predicted right (easy-to-prefetch lines), while
    low-bias conditionals and polymorphic indirect branches mispredict —
    the paper's hard-to-prefetch lines (§II-C Observation #2). *)

module Gshare : sig
  type t

  val create : ?history_bits:int -> ?table_bits:int -> unit -> t
  (** Defaults: 12-bit global history, 4096-entry 2-bit counter table. *)

  val predict : t -> pc:int -> bool
  (** Predicted taken? *)

  val train : t -> pc:int -> taken:bool -> unit
  (** Updates the counter table and shifts the history register. *)

  val accuracy : t -> float
  (** Running prediction accuracy (correct / trained); diagnostics. *)

  val save : t -> unit -> unit
  (** Deep-copies the predictor state; the thunk restores it. *)
end

module Btb : sig
  type t

  val create : ?entries:int -> unit -> t
  (** Direct-mapped, default 8192 entries. *)

  val predict : t -> pc:int -> int option
  (** Last observed target for this branch, if the entry matches. *)

  val predict_id : t -> pc:int -> int
  (** Like {!predict} but returns [-1] when the entry does not match —
      the runahead-loop variant; it never allocates. *)

  val train : t -> pc:int -> target:int -> unit

  val save : t -> unit -> unit
  (** Deep-copies the BTB contents; the thunk restores them. *)
end

module Ras : sig
  type t

  val create : ?depth:int -> unit -> t
  (** Default depth 32; deeper calls wrap and corrupt the oldest entry,
      as in hardware. *)

  val push : t -> int -> unit
  val pop : t -> int option

  val pop_id : t -> int
  (** Like {!pop} but returns [-1] when empty (block ids are [>= 0]);
      never allocates. *)

  val copy_into : src:t -> dst:t -> unit
  (** Overwrites [dst] with [src]'s state (runahead resynchronisation on
      a pipeline flush). *)

  val save : t -> unit -> unit
  (** Deep-copies the stack; the thunk restores it. *)
end
