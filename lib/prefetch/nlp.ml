module Access = Ripple_cache.Access

let filter_size = 4

let create ?(degree = 1) ?(on_miss_only = false) () =
  assert (degree >= 1);
  (* Last few trigger lines, to avoid re-issuing the same next-line
     request on every access within a line run. *)
  let recent = Array.make filter_size (-1) in
  let head = ref 0 in
  let seen line = Array.exists (fun l -> l = line) recent in
  let remember line =
    recent.(!head) <- line;
    head := (!head + 1) mod filter_size
  in
  let on_demand ~line ~missed =
    if (on_miss_only && missed) || ((not on_miss_only) && not (seen line)) then begin
      remember line;
      List.init degree (fun i -> Access.pack_prefetch ~line:(line + i + 1) ~block:(-1))
    end
    else []
  in
  let save () =
    let recent' = Array.copy recent in
    let head' = !head in
    fun () ->
      Array.blit recent' 0 recent 0 filter_size;
      head := head'
  in
  { Prefetcher.name = "nlp"; on_block = (fun _ -> []); on_demand; save }
