let mix x =
  let x = x * 0x9E3779B1 in
  x lxor (x lsr 16)

module Gshare = struct
  type t = {
    history_bits : int;
    table : int array; (* 2-bit counters *)
    mutable history : int;
    mutable trained : int;
    mutable correct : int;
  }

  let create ?(history_bits = 12) ?(table_bits = 12) () =
    { history_bits; table = Array.make (1 lsl table_bits) 2; history = 0; trained = 0; correct = 0 }

  let index t ~pc = (mix pc lxor t.history) land (Array.length t.table - 1)
  let predict t ~pc = t.table.(index t ~pc) >= 2

  let train t ~pc ~taken =
    let i = index t ~pc in
    let was_taken = t.table.(i) >= 2 in
    t.trained <- t.trained + 1;
    if was_taken = taken then t.correct <- t.correct + 1;
    t.table.(i) <- (if taken then min 3 (t.table.(i) + 1) else max 0 (t.table.(i) - 1));
    t.history <- ((t.history lsl 1) lor (if taken then 1 else 0)) land ((1 lsl t.history_bits) - 1)

  let accuracy t = if t.trained = 0 then 0.0 else Float.of_int t.correct /. Float.of_int t.trained

  let save t =
    let table' = Array.copy t.table in
    let history' = t.history and trained' = t.trained and correct' = t.correct in
    fun () ->
      Array.blit table' 0 t.table 0 (Array.length t.table);
      t.history <- history';
      t.trained <- trained';
      t.correct <- correct'
end

module Btb = struct
  type t = { tags : int array; targets : int array }

  let create ?(entries = 8192) () =
    assert (entries > 0 && entries land (entries - 1) = 0);
    { tags = Array.make entries (-1); targets = Array.make entries 0 }

  let index t ~pc = mix pc land (Array.length t.tags - 1)

  let predict t ~pc =
    let i = index t ~pc in
    if t.tags.(i) = pc then Some t.targets.(i) else None

  (* Allocation-free variant for the runahead loop: [-1] = no entry. *)
  let predict_id t ~pc =
    let i = index t ~pc in
    if t.tags.(i) = pc then t.targets.(i) else -1

  let train t ~pc ~target =
    let i = index t ~pc in
    t.tags.(i) <- pc;
    t.targets.(i) <- target

  let save t =
    let tags' = Array.copy t.tags and targets' = Array.copy t.targets in
    fun () ->
      Array.blit tags' 0 t.tags 0 (Array.length t.tags);
      Array.blit targets' 0 t.targets 0 (Array.length t.targets)
end

module Ras = struct
  type t = { stack : int array; mutable top : int; mutable depth : int }

  let create ?(depth = 32) () = { stack = Array.make depth (-1); top = 0; depth = 0 }

  let push t x =
    t.stack.(t.top) <- x;
    t.top <- (t.top + 1) mod Array.length t.stack;
    if t.depth < Array.length t.stack then t.depth <- t.depth + 1

  let pop t =
    if t.depth = 0 then None
    else begin
      t.top <- (t.top + Array.length t.stack - 1) mod Array.length t.stack;
      t.depth <- t.depth - 1;
      Some t.stack.(t.top)
    end

  (* Allocation-free variant: [-1] when empty (pushed ids are >= 0). *)
  let pop_id t =
    if t.depth = 0 then -1
    else begin
      t.top <- (t.top + Array.length t.stack - 1) mod Array.length t.stack;
      t.depth <- t.depth - 1;
      t.stack.(t.top)
    end

  let copy_into ~src ~dst =
    assert (Array.length src.stack = Array.length dst.stack);
    Array.blit src.stack 0 dst.stack 0 (Array.length src.stack);
    dst.top <- src.top;
    dst.depth <- src.depth

  let save t =
    let stack' = Array.copy t.stack in
    let top' = t.top and depth' = t.depth in
    fun () ->
      Array.blit stack' 0 t.stack 0 (Array.length t.stack);
      t.top <- top';
      t.depth <- depth'
end
