module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Access = Ripple_cache.Access
module Ring_queue = Ripple_util.Ring_queue

type internals = {
  gshare : Branch_pred.Gshare.t;
  btb : Branch_pred.Btb.t;
  mispredicts : unit -> int;
  issued : unit -> int;
}

let default_ftq_depth = 24
let default_issue_width = 2
let recent_filter_size = 8

let create_instrumented ?(ftq_depth = default_ftq_depth) ?(issue_width = default_issue_width)
    ~program () =
  let gshare = Branch_pred.Gshare.create () in
  let btb = Branch_pred.Btb.create () in
  let arch_ras = Branch_pred.Ras.create () in
  let runahead_ras = Branch_pred.Ras.create () in
  let ftq = Ring_queue.create ~capacity:ftq_depth ~dummy:(-1) in
  (* Predicted-but-not-yet-issued prefetch lines: drained [issue_width]
     per fetched block, modelling finite prefetch bandwidth. *)
  let pending = Ring_queue.create ~capacity:(ftq_depth * 4) ~dummy:(-1) in
  let frontier = ref (-1) in
  let prev = ref None in
  let mispredicts = ref 0 in
  let issued = ref 0 in
  let recent = Array.make recent_filter_size (-1) in
  let recent_head = ref 0 in
  let remember_line line =
    recent.(!recent_head) <- line;
    recent_head := (!recent_head + 1) mod recent_filter_size
  in
  let recently_issued line = Array.exists (fun l -> l = line) recent in
  (* Train predictors with the architecturally observed transition. *)
  let train (p : Basic_block.t) (now : Basic_block.t) =
    match p.Basic_block.term with
    | Basic_block.Cond { taken; fallthrough = _ } ->
      Branch_pred.Gshare.train gshare ~pc:p.Basic_block.id ~taken:(now.Basic_block.id = taken)
    | Basic_block.Indirect _ ->
      Branch_pred.Btb.train btb ~pc:p.Basic_block.id ~target:now.Basic_block.id
    | Basic_block.Indirect_call { callees = _; return_to } ->
      Branch_pred.Btb.train btb ~pc:p.Basic_block.id ~target:now.Basic_block.id;
      Branch_pred.Ras.push arch_ras return_to
    | Basic_block.Call { callee = _; return_to } -> Branch_pred.Ras.push arch_ras return_to
    | Basic_block.Return -> ignore (Branch_pred.Ras.pop arch_ras)
    | Basic_block.Fallthrough _ | Basic_block.Jump _ | Basic_block.Halt -> ()
  in
  (* One runahead step: predicted successor of [block], updating the
     speculative RAS.  [None] = stall. *)
  let predict_successor (b : Basic_block.t) =
    match b.Basic_block.term with
    | Basic_block.Fallthrough next | Basic_block.Jump next -> Some next
    | Basic_block.Cond { taken; fallthrough } ->
      if Branch_pred.Gshare.predict gshare ~pc:b.Basic_block.id then Some taken
      else Some fallthrough
    | Basic_block.Call { callee; return_to } ->
      Branch_pred.Ras.push runahead_ras return_to;
      Some callee
    | Basic_block.Indirect _ -> Branch_pred.Btb.predict btb ~pc:b.Basic_block.id
    | Basic_block.Indirect_call { callees = _; return_to } -> begin
      match Branch_pred.Btb.predict btb ~pc:b.Basic_block.id with
      | Some target ->
        Branch_pred.Ras.push runahead_ras return_to;
        Some target
      | None -> None
    end
    | Basic_block.Return -> Branch_pred.Ras.pop runahead_ras
    | Basic_block.Halt -> None
  in
  let queue_block_lines id =
    let b = Program.block program id in
    List.iter
      (fun line ->
        if not (recently_issued line) then begin
          remember_line line;
          ignore (Ring_queue.push pending line)
        end)
      (Basic_block.lines b)
  in
  (* Extend the runahead path until the FTQ fills, prediction stalls, or
     prefetch-queue backpressure pauses it. *)
  let refill () =
    let room () = Ring_queue.length pending < Ring_queue.capacity pending - 8 in
    let rec go () =
      if (not (Ring_queue.is_full ftq)) && !frontier >= 0 && room () then begin
        match predict_successor (Program.block program !frontier) with
        | None -> ()
        | Some next ->
          ignore (Ring_queue.push ftq next);
          frontier := next;
          queue_block_lines next;
          go ()
      end
    in
    go ()
  in
  let drain () =
    let rec go n acc =
      if n = 0 then acc
      else begin
        match Ring_queue.pop pending with
        | None -> acc
        | Some line ->
          incr issued;
          go (n - 1) (Access.prefetch ~line ~block:(-1) :: acc)
      end
    in
    List.rev (go issue_width [])
  in
  let on_block (b : Basic_block.t) =
    (match !prev with Some p -> train p b | None -> ());
    prev := Some b;
    (match Ring_queue.peek ftq with
    | Some head when head = b.Basic_block.id -> ignore (Ring_queue.pop ftq)
    | Some _ ->
      (* Wrong path: flush and resynchronise the speculative state. *)
      incr mispredicts;
      Ring_queue.clear ftq;
      Ring_queue.clear pending;
      Branch_pred.Ras.copy_into ~src:arch_ras ~dst:runahead_ras;
      frontier := b.Basic_block.id
    | None ->
      Branch_pred.Ras.copy_into ~src:arch_ras ~dst:runahead_ras;
      frontier := b.Basic_block.id);
    refill ();
    drain ()
  in
  let prefetcher =
    {
      Prefetcher.name = "fdip";
      on_block;
      on_demand = (fun ~line:_ ~missed:_ -> []);
    }
  in
  let internals =
    { gshare; btb; mispredicts = (fun () -> !mispredicts); issued = (fun () -> !issued) }
  in
  (prefetcher, internals)

let create ?ftq_depth ?issue_width ~program () =
  fst (create_instrumented ?ftq_depth ?issue_width ~program ())
