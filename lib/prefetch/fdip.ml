module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Access = Ripple_cache.Access
module Ring_queue = Ripple_util.Ring_queue

type internals = {
  gshare : Branch_pred.Gshare.t;
  btb : Branch_pred.Btb.t;
  mispredicts : unit -> int;
  issued : unit -> int;
}

let default_ftq_depth = 24
let default_issue_width = 2
let recent_filter_size = 8

(* Top-level recursion (not [Array.exists] with a capturing predicate,
   which would allocate a closure per queued line). *)
let rec array_mem_from arr x i =
  i < Array.length arr && (arr.(i) = x || array_mem_from arr x (i + 1))

let create_instrumented ?(ftq_depth = default_ftq_depth) ?(issue_width = default_issue_width)
    ~program () =
  let gshare = Branch_pred.Gshare.create () in
  let btb = Branch_pred.Btb.create () in
  let arch_ras = Branch_pred.Ras.create () in
  let runahead_ras = Branch_pred.Ras.create () in
  let ftq = Ring_queue.create ~capacity:ftq_depth ~dummy:(-1) in
  (* Predicted-but-not-yet-issued prefetch lines: drained [issue_width]
     per fetched block, modelling finite prefetch bandwidth. *)
  let pending = Ring_queue.create ~capacity:(ftq_depth * 4) ~dummy:(-1) in
  let frontier = ref (-1) in
  let prev = ref (-1) in
  let mispredicts = ref 0 in
  let issued = ref 0 in
  let recent = Array.make recent_filter_size (-1) in
  let recent_head = ref 0 in
  let remember_line line =
    recent.(!recent_head) <- line;
    recent_head := (!recent_head + 1) mod recent_filter_size
  in
  let recently_issued line = array_mem_from recent line 0 in
  (* Train predictors with the architecturally observed transition. *)
  let train (p : Basic_block.t) (now : Basic_block.t) =
    match p.Basic_block.term with
    | Basic_block.Cond { taken; fallthrough = _ } ->
      Branch_pred.Gshare.train gshare ~pc:p.Basic_block.id ~taken:(now.Basic_block.id = taken)
    | Basic_block.Indirect _ ->
      Branch_pred.Btb.train btb ~pc:p.Basic_block.id ~target:now.Basic_block.id
    | Basic_block.Indirect_call { callees = _; return_to } ->
      Branch_pred.Btb.train btb ~pc:p.Basic_block.id ~target:now.Basic_block.id;
      Branch_pred.Ras.push arch_ras return_to
    | Basic_block.Call { callee = _; return_to } -> Branch_pred.Ras.push arch_ras return_to
    | Basic_block.Return -> ignore (Branch_pred.Ras.pop arch_ras)
    | Basic_block.Fallthrough _ | Basic_block.Jump _ | Basic_block.Halt -> ()
  in
  (* One runahead step: predicted successor of [block], updating the
     speculative RAS.  [-1] = stall; an int sentinel rather than an
     option so the runahead loop allocates nothing per step. *)
  let predict_successor (b : Basic_block.t) =
    match b.Basic_block.term with
    | Basic_block.Fallthrough next | Basic_block.Jump next -> next
    | Basic_block.Cond { taken; fallthrough } ->
      if Branch_pred.Gshare.predict gshare ~pc:b.Basic_block.id then taken else fallthrough
    | Basic_block.Call { callee; return_to } ->
      Branch_pred.Ras.push runahead_ras return_to;
      callee
    | Basic_block.Indirect _ -> Branch_pred.Btb.predict_id btb ~pc:b.Basic_block.id
    | Basic_block.Indirect_call { callees = _; return_to } ->
      let target = Branch_pred.Btb.predict_id btb ~pc:b.Basic_block.id in
      if target >= 0 then Branch_pred.Ras.push runahead_ras return_to;
      target
    | Basic_block.Return -> Branch_pred.Ras.pop_id runahead_ras
    | Basic_block.Halt -> -1
  in
  (* Lines per block, computed once: [Basic_block.lines] allocates a
     fresh list per call, which the runahead path would otherwise do for
     every FTQ entry. *)
  let lines_per_block =
    Array.map (fun b -> Array.of_list (Basic_block.lines b)) (Program.blocks program)
  in
  let queue_block_lines id =
    let lines = lines_per_block.(id) in
    for i = 0 to Array.length lines - 1 do
      let line = Array.unsafe_get lines i in
      if not (recently_issued line) then begin
        remember_line line;
        ignore (Ring_queue.push pending line)
      end
    done
  in
  (* Extend the runahead path until the FTQ fills, prediction stalls, or
     prefetch-queue backpressure pauses it.  Defined with [let rec] at
     this level (not as an inner closure) so calling it per block
     allocates nothing. *)
  let rec refill () =
    if
      (not (Ring_queue.is_full ftq))
      && !frontier >= 0
      && Ring_queue.length pending < Ring_queue.capacity pending - 8
    then begin
      let next = predict_successor (Program.block program !frontier) in
      if next >= 0 then begin
        ignore (Ring_queue.push ftq next);
        frontier := next;
        queue_block_lines next;
        refill ()
      end
    end
  in
  (* Pops in FIFO order and conses in recursion order, so the issued
     list is already oldest-first — no [List.rev] copy. *)
  let rec drain n =
    if n = 0 then []
    else begin
      let line = Ring_queue.pop_or pending ~default:(-1) in
      if line < 0 then []
      else begin
        incr issued;
        Access.pack_prefetch ~line ~block:(-1) :: drain (n - 1)
      end
    end
  in
  let on_block (b : Basic_block.t) =
    if !prev >= 0 then train (Program.block program !prev) b;
    prev := b.Basic_block.id;
    let head = Ring_queue.peek_or ftq ~default:(-1) in
    if head = b.Basic_block.id then ignore (Ring_queue.pop_or ftq ~default:(-1))
    else begin
      if head >= 0 then begin
        (* Wrong path: flush and resynchronise the speculative state. *)
        incr mispredicts;
        Ring_queue.clear ftq;
        Ring_queue.clear pending
      end;
      Branch_pred.Ras.copy_into ~src:arch_ras ~dst:runahead_ras;
      frontier := b.Basic_block.id
    end;
    refill ();
    drain issue_width
  in
  let save () =
    let restore_gshare = Branch_pred.Gshare.save gshare in
    let restore_btb = Branch_pred.Btb.save btb in
    let restore_arch_ras = Branch_pred.Ras.save arch_ras in
    let restore_runahead_ras = Branch_pred.Ras.save runahead_ras in
    let ftq' = Ring_queue.copy ftq in
    let pending' = Ring_queue.copy pending in
    let frontier' = !frontier and prev' = !prev in
    let mispredicts' = !mispredicts and issued' = !issued in
    let recent' = Array.copy recent in
    let recent_head' = !recent_head in
    fun () ->
      restore_gshare ();
      restore_btb ();
      restore_arch_ras ();
      restore_runahead_ras ();
      Ring_queue.copy_into ~src:ftq' ~dst:ftq;
      Ring_queue.copy_into ~src:pending' ~dst:pending;
      frontier := frontier';
      prev := prev';
      mispredicts := mispredicts';
      issued := issued';
      Array.blit recent' 0 recent 0 recent_filter_size;
      recent_head := recent_head'
  in
  let prefetcher =
    {
      Prefetcher.name = "fdip";
      on_block;
      on_demand = (fun ~line:_ ~missed:_ -> []);
      save;
    }
  in
  let internals =
    { gshare; btb; mispredicts = (fun () -> !mispredicts); issued = (fun () -> !issued) }
  in
  (prefetcher, internals)

let create ?ftq_depth ?issue_width ~program () =
  fst (create_instrumented ?ftq_depth ?issue_width ~program ())
