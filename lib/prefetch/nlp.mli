(** Next-line prefetcher (Smith 1978).

    On a demand reference to line [X], prefetch [X+1 .. X+degree] — the
    classic sequential prefetcher and one of the paper's three
    prefetching baselines.  Prefetching is triggered by {e accesses},
    not misses, so the prefetch stream is a pure function of the demand
    stream: it does not depend on cache contents, which is what lets the
    Demand-MIN analysis (and Ripple's injected invalidations) reason
    about it soundly.  A small filter suppresses the duplicate
    next-line requests that sequential fetch would otherwise spray.

    [~on_miss_only:true] restores the miss-triggered variant (used by
    the ablation bench to show why access-triggered is the right
    model). *)

val create : ?degree:int -> ?on_miss_only:bool -> unit -> Prefetcher.t
(** [degree] defaults to 1. *)
