(** RDIP: return-address-stack-directed instruction prefetching
    (Kolli, Saidi & Wenisch, MICRO 2013) — one of the history-based
    prefetchers the paper surveys (§I, §VI).

    RDIP observes that a program's instruction working set is strongly
    correlated with its call-stack context: it hashes the top of the
    return-address stack into a {e signature}, associates with each
    signature the set of cache lines missed while that signature was
    live, and prefetches that set as soon as the signature recurs
    (calls and returns both form new signatures).

    Compared to FDIP it needs no branch-predictor runahead, but it pays
    with a large signature table — the on-chip metadata cost the paper's
    Table I-style analysis holds against this prefetcher family.  The
    implementation here exists as a comparison point for the ablation
    bench; Ripple itself is prefetcher-agnostic. *)

module Program := Ripple_isa.Program

val default_table_entries : int
val default_lines_per_signature : int

val create :
  ?table_entries:int ->
  ?lines_per_signature:int ->
  program:Program.t ->
  unit ->
  Prefetcher.t

val storage_bits : table_entries:int -> lines_per_signature:int -> int
(** Metadata accounting: each entry holds a tag plus
    [lines_per_signature] 26-bit line addresses. *)
