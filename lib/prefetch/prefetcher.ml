type t = {
  name : string;
  on_block : Ripple_isa.Basic_block.t -> Ripple_cache.Access.packed list;
  on_demand : line:Ripple_isa.Addr.line -> missed:bool -> Ripple_cache.Access.packed list;
  save : unit -> unit -> unit;
}

let nop_save () () = ()

let none =
  {
    name = "none";
    on_block = (fun _ -> []);
    on_demand = (fun ~line:_ ~missed:_ -> []);
    save = nop_save;
  }
