(** Fetch-directed instruction prefetching (Reinman, Calder & Austin 1999).

    A decoupled front end: a runahead engine walks the program's CFG from
    the current fetch point, resolving conditional branches with gshare,
    indirect targets with a BTB and returns with a return-address stack,
    and pushes predicted basic blocks into a fetch-target queue whose
    cache lines are prefetched into the L1I.  When the actual executed
    block disagrees with the queue head the runahead state is flushed and
    re-seeded from architectural state, just as a pipeline flush would —
    the wrong-path lines already prefetched remain in the cache as
    pollution, which is the waste Ripple's Observation #1 targets.

    A runahead stall (BTB miss on an indirect target, empty RAS, or
    program exit) pauses prefetching until the next flush resynchronises,
    modelling fetch-target starvation on hard-to-predict control flow. *)

module Program := Ripple_isa.Program

type internals = {
  gshare : Branch_pred.Gshare.t;
  btb : Branch_pred.Btb.t;
  mispredicts : unit -> int;  (** runahead flushes caused by wrong paths *)
  issued : unit -> int;  (** prefetch accesses issued *)
}

val default_ftq_depth : int
(** 24 fetch targets, in line with the FTQ sizing the IPC-1 studies use. *)

val default_issue_width : int
(** Prefetch lines issued per fetched block (finite fill bandwidth; a
    flushed front end takes several blocks to re-cover a new path, which
    is where FDIP's residual misses come from). *)

val create :
  ?ftq_depth:int -> ?issue_width:int -> program:Program.t -> unit -> Prefetcher.t

val create_instrumented :
  ?ftq_depth:int -> ?issue_width:int -> program:Program.t -> unit -> Prefetcher.t * internals
(** Like {!create} but exposing predictor internals for tests and
    diagnostics. *)
