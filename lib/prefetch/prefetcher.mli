(** Front-end prefetcher interface.

    The trace-driven simulator calls [on_block] once per executed basic
    block — the prefetcher trains on the observed control flow and
    returns the prefetch accesses it issues ahead of the block's demand
    fetch — and [on_demand] after each demand reference, letting reactive
    schemes (next-line) chase misses.  Prefetches are modelled as
    instantaneous fills: a correct prefetch fully hides the miss, an
    incorrect one pollutes the cache, which is precisely the eviction
    problem Ripple targets (§II-C). *)

module Basic_block := Ripple_isa.Basic_block
module Addr := Ripple_isa.Addr
module Access := Ripple_cache.Access

type t = {
  name : string;
  on_block : Basic_block.t -> Access.packed list;
      (** Called in execution order; result is issued to the I-cache
          (as prefetches) before the block's own demand accesses.
          Packed ({!Access.packed}) so issuing costs one list cell per
          prefetch and nothing more. *)
  on_demand : line:Addr.line -> missed:bool -> Access.packed list;
      (** Called after each demand access with its hit/miss outcome. *)
  save : unit -> unit -> unit;
      (** [save ()] captures a deep copy of the prefetcher's training
          state (history, BTB, RAS, queues); the thunk restores it.
          Checkpointed warm-up rewinds to it before each sampled
          window. *)
}

val nop_save : unit -> unit -> unit
(** For stateless prefetchers. *)

val none : t
(** The no-prefetching baseline. *)
