module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Geometry = Ripple_cache.Geometry
module Json = Ripple_util.Json

(* ------------------------------------------------------------------ *)
(* Small dense bit sets over [0, k), packed into int arrays.  The hot
   loop copies whole states per transfer, so the representation is
   chosen for cheap copy (Array.copy / memcpy) and word-parallel
   join. *)

let bpw = Sys.int_size

let bs_get s i = s.(i / bpw) land (1 lsl (i mod bpw)) <> 0

let bs_set s i =
  let w = i / bpw in
  s.(w) <- s.(w) lor (1 lsl (i mod bpw))

let bs_clear s i =
  let w = i / bpw in
  s.(w) <- s.(w) land lnot (1 lsl (i mod bpw))

let bs_inter_into dst src =
  for w = 0 to Array.length dst - 1 do
    dst.(w) <- dst.(w) land src.(w)
  done

let bs_union_into dst src =
  for w = 0 to Array.length dst - 1 do
    dst.(w) <- dst.(w) lor src.(w)
  done

let int_array_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let bs_count s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

(* ------------------------------------------------------------------ *)
(* The product abstract state, chunked by cache set: per member line
   of each set, one bit for must-any and may residency and one byte
   for the LRU age bound ([ways] encodes "no bound", i.e. possibly
   absent).  Lines in different sets never interact, so a block's
   transfer rewrites only the chunks of the sets its lines and hints
   map to and shares every other chunk by pointer; joins and equality
   checks short-circuit on pointer-equal chunks.  On data-center CFGs
   — tens of thousands of blocks over tens of thousands of lines, a
   handful of lines per block — this turns both from O(footprint) into
   O(sets), and is the difference between gigabytes and megabytes of
   stored per-node state. *)

type chunk = { any : int array; may : int array; age : Bytes.t }

let copy_chunk c =
  { any = Array.copy c.any; may = Array.copy c.may; age = Bytes.copy c.age }

let chunk_struct_equal a b =
  int_array_equal a.any b.any && int_array_equal a.may b.may && Bytes.equal a.age b.age

let chunk_equal a b = a == b || chunk_struct_equal a b

let chunk_join a b =
  if a == b then a
  else begin
    let any = Array.copy a.any in
    bs_inter_into any b.any;
    let may = Array.copy a.may in
    bs_union_into may b.may;
    let age = Bytes.copy a.age in
    for i = 0 to Bytes.length age - 1 do
      let y = Bytes.get_uint8 b.age i in
      if y > Bytes.get_uint8 age i then Bytes.set_uint8 age i y
    done;
    let c = { any; may; age } in
    (* Re-share with an argument whenever the result is not new:
       pointer-equal chunks keep later joins and equality checks
       constant-time. *)
    if chunk_struct_equal c a then a else if chunk_struct_equal c b then b else c
  end

module Dom = struct
  type t = chunk array (* indexed by cache set *)

  let equal a b =
    a == b
    ||
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go s = s >= n || (chunk_equal a.(s) b.(s) && go (s + 1)) in
    go 0

  let join a b =
    if a == b then a
    else begin
      let n = Array.length a in
      let c = Array.init n (fun s -> chunk_join a.(s) b.(s)) in
      let rec all_a s = s >= n || (c.(s) == a.(s) && all_a (s + 1)) in
      if all_a 0 then a else c
    end
end

module Solver = Fixpoint.Make (Dom)

type site_fact = {
  index : int;
  line : Addr.line;
  must_hit : bool;
  must_hit_lru : bool;
  always_miss : bool;
}

(* Memoized per-hint-line auxiliary passes (see [prove]):
   [r]  — may the line be re-referenced, before another invalidation of
          it, starting at this block?  (backward reachability, used for
          Proved_dead)
   [fe] — on *every* closed path from this block, is the first same-set
          event an access to the line itself?  (least fixpoint, used
          for Proved_harmful)
   [d]  — which distinct same-set lines are touched on every path
          before the line is re-referenced?  (greatest fixpoint over
          per-set bit sets, used for Proved_pressure) *)
type pass = { r : bool array; fe : bool array; d : int array array; top : int array }

type t = {
  geometry : Geometry.t;
  blocks : Basic_block.t array;
  succs : int list array;  (* closed graph *)
  preds : int list array;
  reach : bool array;
  k : int;  (* tracked (reachable-footprint) line count *)
  id_of_line : (Addr.line, int) Hashtbl.t;
  line_of_id : int array;
  set_of_id : int array;
  set_members : int list array;  (* per cache set, ids ascending *)
  set_slot : int array;  (* id -> position within its set's members *)
  pers : bool array;  (* per cache set *)
  invalidated : (Addr.line, unit) Hashtbl.t;  (* lines hinted away somewhere reachable *)
  post : int array;  (* node ids, postorder over [succs] (successors first) *)
  facts : site_fact array array;
  hint_res : (bool * bool) array array;  (* (must-any, may) residency at each hint *)
  stats : Fixpoint.stats;
  passes : (Addr.line, pass) Hashtbl.t;
}

let closed_successors ~entry blocks =
  let n = Array.length blocks in
  let return_tos =
    Array.fold_left
      (fun acc (b : Basic_block.t) ->
        match b.Basic_block.term with
        | Basic_block.Call { return_to; _ } | Basic_block.Indirect_call { return_to; _ }
          ->
          return_to :: acc
        | _ -> acc)
      [] blocks
  in
  (* A [Return] may resume at any call's return site (the stack is not
     tracked; overflow drops frames) or at the entry/dispatcher when
     the stack is empty; [Halt] restarts at the entry. *)
  let resume = List.sort_uniq compare (entry :: return_tos) in
  Array.map
    (fun (b : Basic_block.t) ->
      let extra =
        match b.Basic_block.term with
        | Basic_block.Return -> resume
        | Basic_block.Halt -> [ entry ]
        | _ -> []
      in
      List.filter
        (fun s -> s >= 0 && s < n)
        (List.sort_uniq compare (Cfg.flow_successors b @ extra)))
    blocks

let analyze ~geometry ~entry blocks =
  let n = Array.length blocks in
  let ways = geometry.Geometry.ways in
  if ways < 1 || ways > 254 then
    invalid_arg "Abs_cache.analyze: associativity out of range";
  let nsets = Geometry.sets geometry in
  (* The return closure is factored through a virtual resume hub (node
     [n], no code, identity transfer): every [Return] feeds the hub and
     the hub feeds every resume site.  Joins are associative and
     idempotent, so every fixpoint over the factored graph equals the
     one over the direct closure ({!closed_successors}), while the edge
     count drops from |returns| x |sites| to |returns| + |sites| — the
     difference between minutes and milliseconds on data-center-sized
     CFGs, where both factors run into the hundreds. *)
  let nn = n + 1 in
  let hub = n in
  let return_tos =
    Array.fold_left
      (fun acc (b : Basic_block.t) ->
        match b.Basic_block.term with
        | Basic_block.Call { return_to; _ } | Basic_block.Indirect_call { return_to; _ }
          ->
          return_to :: acc
        | _ -> acc)
      [] blocks
  in
  let resume =
    List.filter (fun s -> s >= 0 && s < n) (List.sort_uniq compare (entry :: return_tos))
  in
  let succs = Array.make nn [] in
  succs.(hub) <- resume;
  Array.iteri
    (fun v (b : Basic_block.t) ->
      let extra =
        match b.Basic_block.term with
        | Basic_block.Return -> [ hub ]
        | Basic_block.Halt -> [ entry ]
        | _ -> []
      in
      succs.(v) <-
        List.filter
          (fun s -> s >= 0 && s < nn)
          (List.sort_uniq compare (Cfg.flow_successors b @ extra)))
    blocks;
  let preds = Array.make nn [] in
  for v = nn - 1 downto 0 do
    List.iter (fun s -> preds.(s) <- v :: preds.(s)) succs.(v)
  done;
  let reach = Array.make nn false in
  if entry >= 0 && entry < n then begin
    let q = Queue.create () in
    reach.(entry) <- true;
    Queue.add entry q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun s ->
          if not reach.(s) then begin
            reach.(s) <- true;
            Queue.add s q
          end)
        succs.(v)
    done
  end;
  (* Postorder over [succs] (successors before predecessors), used by
     the backward per-hint passes to sweep in dependency order. *)
  let post = Array.make nn 0 in
  let postn = ref 0 in
  let pushed = Array.make nn false in
  (if entry >= 0 && entry < n then begin
     let stack = Stack.create () in
     pushed.(entry) <- true;
     Stack.push (entry, succs.(entry)) stack;
     while not (Stack.is_empty stack) do
       let v, rest = Stack.pop stack in
       match rest with
       | [] ->
         post.(!postn) <- v;
         incr postn
       | s :: tl ->
         Stack.push (v, tl) stack;
         if not pushed.(s) then begin
           pushed.(s) <- true;
           Stack.push (s, succs.(s)) stack
         end
     done
   end);
  for v = 0 to nn - 1 do
    if not pushed.(v) then begin
      post.(!postn) <- v;
      incr postn
    end
  done;
  (* Tracked lines: the reachable footprint, ids in first-seen order. *)
  let id_of_line = Hashtbl.create 256 in
  let rev_lines = ref [] in
  let k = ref 0 in
  Array.iteri
    (fun v b ->
      if reach.(v) then
        List.iter
          (fun l ->
            if not (Hashtbl.mem id_of_line l) then begin
              Hashtbl.add id_of_line l !k;
              rev_lines := l :: !rev_lines;
              incr k
            end)
          (Basic_block.lines b))
    blocks;
  let k = !k in
  let line_of_id = Array.of_list (List.rev !rev_lines) in
  let set_of_id = Array.map (fun l -> Geometry.set_of_line geometry l) line_of_id in
  let set_members = Array.make nsets [] in
  for i = k - 1 downto 0 do
    set_members.(set_of_id.(i)) <- i :: set_members.(set_of_id.(i))
  done;
  let set_slot = Array.make (max 1 k) 0 in
  Array.iter (fun ms -> List.iteri (fun slot i -> set_slot.(i) <- slot) ms) set_members;
  let pers = Array.map (fun ms -> List.length ms <= ways) set_members in
  let invalidated = Hashtbl.create 64 in
  Array.iteri
    (fun v (b : Basic_block.t) ->
      if reach.(v) then
        Array.iter
          (function
            | Basic_block.Invalidate l -> Hashtbl.replace invalidated l ()
            | Basic_block.Demote _ -> ())
          b.Basic_block.hints)
    blocks;
  let block_line_ids =
    Array.mapi
      (fun v b ->
        if reach.(v) then
          Array.of_list
            (List.map (fun l -> Hashtbl.find id_of_line l) (Basic_block.lines b))
        else [||])
      blocks
  in
  (* Transfer: the block's line accesses in execution order, then its
     hints in order — matching the simulator's per-block sequence.
     [base] holds the incoming chunk pointers: a chunk is copied on
     first write only, so untouched sets stay shared. *)
  let set_size = Array.map List.length set_members in
  let own ~base st s = if st.(s) == base.(s) then st.(s) <- copy_chunk st.(s) in
  let touch ~base st i =
    let s = set_of_id.(i) in
    own ~base st s;
    let ch = st.(s) in
    let sl = set_slot.(i) in
    if not (bs_get ch.any sl) then
      if pers.(s) then bs_set ch.any sl
      else begin
        (* A potential miss in a non-persistent set may evict anything
           there, whichever policy picks the victim. *)
        Array.fill ch.any 0 (Array.length ch.any) 0;
        bs_set ch.any sl
      end;
    let a = Bytes.get_uint8 ch.age sl in
    for j = 0 to set_size.(s) - 1 do
      if j <> sl then begin
        let aj = Bytes.get_uint8 ch.age j in
        if aj < a then Bytes.set_uint8 ch.age j (aj + 1)
      end
    done;
    Bytes.set_uint8 ch.age sl 0;
    bs_set ch.may sl
  in
  let apply_hint ~base st = function
    | Basic_block.Invalidate l -> (
      match Hashtbl.find_opt id_of_line l with
      | None -> ()
      | Some i ->
        let s = set_of_id.(i) in
        own ~base st s;
        let ch = st.(s) in
        let sl = set_slot.(i) in
        bs_clear ch.any sl;
        bs_clear ch.may sl;
        Bytes.set_uint8 ch.age sl ways)
    | Basic_block.Demote l -> (
      match Hashtbl.find_opt id_of_line l with
      | None -> ()
      | Some i ->
        let s = set_of_id.(i) in
        own ~base st s;
        let ch = st.(s) in
        let sl = set_slot.(i) in
        (* Residency is untouched (a demote never evicts; in a
           persistent set the victim is never consulted), but under LRU
           the line now sits at the eviction-first position. *)
        if Bytes.get_uint8 ch.age sl < ways then Bytes.set_uint8 ch.age sl (ways - 1))
  in
  let transfer v st =
    if
      v = hub
      || Array.length block_line_ids.(v) = 0
         && Array.length blocks.(v).Basic_block.hints = 0
    then st
    else begin
      let base = st in
      let st = Array.copy st in
      Array.iter (fun i -> touch ~base st i) block_line_ids.(v);
      Array.iter (fun h -> apply_hint ~base st h) blocks.(v).Basic_block.hints;
      st
    end
  in
  let empty_chunk m =
    {
      any = Array.make ((m + bpw - 1) / bpw) 0;
      may = Array.make ((m + bpw - 1) / bpw) 0;
      age = Bytes.make m (Char.chr ways);
    }
  in
  let empty = Array.init nsets (fun s -> empty_chunk set_size.(s)) in
  let empty_state () = Array.copy empty in
  let entries = if entry >= 0 && entry < n then [ (entry, empty_state ()) ] else [] in
  (* Ages converge by +1 creep around loops — up to [ways] global
     waves through the closed graph, each costing a full propagation.
     After a node's state has changed [widen_after] times, any age
     still climbing jumps straight to "no bound".  That forfeits
     must-hit-LRU precision only at deeply iterated join points and
     never touches must/may residency; small CFGs never reach the
     threshold and keep exact ages. *)
  let widen old fresh =
    if old == fresh then fresh
    else
      Array.mapi
        (fun s f ->
          let o = old.(s) in
          if o == f then f
          else begin
            let age = ref None in
            for i = 0 to Bytes.length f.age - 1 do
              let fi = Bytes.get_uint8 f.age i in
              if fi < ways && fi > Bytes.get_uint8 o.age i then begin
                let a =
                  match !age with
                  | Some a -> a
                  | None ->
                    let a = Bytes.copy f.age in
                    age := Some a;
                    a
                in
                Bytes.set_uint8 a i ways
              end
            done;
            match !age with None -> f | Some a -> { any = f.any; may = f.may; age = a }
          end)
        fresh
  in
  let res = Solver.solve ~widen ~widen_after:8 ~n:nn ~entries ~preds ~transfer () in
  let facts = Array.make n [||] in
  let hint_res = Array.make n [||] in
  Array.iteri
    (fun v (b : Basic_block.t) ->
      match res.Solver.in_.(v) with
      | None -> ()
      | Some st0 ->
        let base = st0 in
        let st = Array.copy st0 in
        let ids = block_line_ids.(v) in
        let fs =
          Array.make (Array.length ids)
            { index = 0; line = 0; must_hit = false; must_hit_lru = false; always_miss = false }
        in
        for index = 0 to Array.length ids - 1 do
          let i = ids.(index) in
          let ch = st.(set_of_id.(i)) in
          let sl = set_slot.(i) in
          let resident_any = bs_get ch.any sl in
          fs.(index) <-
            {
              index;
              line = line_of_id.(i);
              must_hit = resident_any;
              must_hit_lru = resident_any || Bytes.get_uint8 ch.age sl < ways;
              always_miss = not (bs_get ch.may sl);
            };
          touch ~base st i
        done;
        facts.(v) <- fs;
        let hs = b.Basic_block.hints in
        let hr = Array.make (Array.length hs) (false, false) in
        for j = 0 to Array.length hs - 1 do
          (match Hashtbl.find_opt id_of_line (Basic_block.hint_line hs.(j)) with
          | None -> ()
          | Some i ->
            let ch = st.(set_of_id.(i)) in
            let sl = set_slot.(i) in
            hr.(j) <- (bs_get ch.any sl, bs_get ch.may sl));
          apply_hint ~base st hs.(j)
        done;
        hint_res.(v) <- hr)
    blocks;
  {
    geometry;
    blocks;
    succs;
    preds;
    reach;
    k;
    id_of_line;
    line_of_id;
    set_of_id;
    set_members;
    set_slot;
    pers;
    invalidated;
    post;
    facts;
    hint_res;
    stats = res.Solver.stats;
    passes = Hashtbl.create 16;
  }

let facts t = t.facts

(* [t.reach] covers the resume hub too; callers index by block id. *)
let reachable t = Array.sub t.reach 0 (Array.length t.blocks)

let persistent t ~set =
  set >= 0 && set < Array.length t.pers && t.pers.(set)

let first_miss_only t line =
  match Hashtbl.find_opt t.id_of_line line with
  | None -> false
  | Some i -> t.pers.(t.set_of_id.(i)) && not (Hashtbl.mem t.invalidated line)

let solver_stats t = t.stats

(* ------------------------------------------------------------------ *)
(* Hint proofs. *)

type verdict =
  | Proved_noop
  | Proved_dead
  | Proved_persistent
  | Proved_pressure
  | Proved_harmful
  | Unproved

let verdict_name = function
  | Proved_noop -> "proved_noop"
  | Proved_dead -> "proved_dead"
  | Proved_persistent -> "proved_persistent"
  | Proved_pressure -> "proved_pressure"
  | Proved_harmful -> "proved_harmful"
  | Unproved -> "unproved"

let proved_safe = function
  | Proved_dead | Proved_persistent | Proved_pressure -> true
  | Proved_noop | Proved_harmful | Unproved -> false

let compute_pass t l =
  (* Passes run over the hub-extended graph ([nn] nodes, see
     {!analyze}): the hub has no lines and no hints, so it is
     transparent to all three fixpoints and the results at real blocks
     match the directly-closed graph. *)
  let nb = Array.length t.blocks in
  let nn = Array.length t.succs in
  let sl = Geometry.set_of_line t.geometry l in
  let refs = Array.make nn false in
  let invs = Array.make nn false in
  for v = 0 to nb - 1 do
    refs.(v) <- List.exists (fun x -> x = l) (Basic_block.lines t.blocks.(v));
    invs.(v) <-
      Array.exists
        (function Basic_block.Invalidate x -> x = l | Basic_block.Demote _ -> false)
        t.blocks.(v).Basic_block.hints
  done;
  (* [r]: backward may-reachability of a reference to [l], gated per
     block by "no invalidation of [l] is crossed first".  A block that
     both references and invalidates counts as reaching (lines execute
     before hints). *)
  let r = Array.make nn false in
  let q = Queue.create () in
  for v = 0 to nn - 1 do
    if t.reach.(v) && refs.(v) then begin
      r.(v) <- true;
      Queue.add v q
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun p ->
        if t.reach.(p) && (not r.(p)) && not invs.(p) then begin
          r.(p) <- true;
          Queue.add p q
        end)
      t.preds.(v)
  done;
  (* [fe]: least fixpoint of "the first same-set event on every path
     from here is an access to [l] itself".  Per block the event is
     decided by its line scan — an access to [l] settles true, a
     possibly-missing same-set access settles false (it could evict or
     consult the policy), a must-hit same-set access is a guaranteed
     non-event in both the hinted and the unhinted world.  A
     re-invalidation of [l] settles false: the miss would happen
     anyway. *)
  (* The event is computed lazily and memoized: fe propagation only
     ever looks at the neighbourhood of blocks referencing [l], a tiny
     fraction of a data-center CFG. *)
  let event_memo = Array.make nn (-2) in
  let event v =
    if event_memo.(v) <> -2 then event_memo.(v)
    else begin
      let ev =
        if not t.reach.(v) then -1
        else if v >= nb then 0
        else begin
          let ev = ref 0 in
          (try
             Array.iter
               (fun (f : site_fact) ->
                 if f.line = l then begin
                   ev := 1;
                   raise Exit
                 end
                 else if
                   Geometry.set_of_line t.geometry f.line = sl && not f.must_hit
                 then begin
                   ev := -1;
                   raise Exit
                 end)
               t.facts.(v)
           with Exit -> ());
          if !ev = 0 && invs.(v) then ev := -1;
          !ev
        end
      in
      event_memo.(v) <- ev;
      ev
    end
  in
  let fe = Array.make nn false in
  let q = Queue.create () in
  for v = 0 to nb - 1 do
    if t.reach.(v) && refs.(v) && event v = 1 then begin
      fe.(v) <- true;
      Queue.add v q
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun p ->
        if
          t.reach.(p) && (not fe.(p)) && event p = 0
          && t.succs.(p) <> []
          && List.for_all (fun s -> fe.(s)) t.succs.(p)
        then begin
          fe.(p) <- true;
          Queue.add p q
        end)
      t.preds.(v)
  done;
  (* [d]: greatest fixpoint of the guaranteed-distinct-conflict set —
     same-set lines touched on *every* path before [l] is
     re-referenced.  Top (= every other line in the set) means "no path
     re-references [l] without them", which also covers paths that
     never re-reference [l] at all or re-invalidate it first. *)
  let members = t.set_members.(sl) in
  let m = List.length members in
  let nw = max 1 ((m + bpw - 1) / bpw) in
  let top = Array.make nw 0 in
  List.iter
    (fun i -> if t.line_of_id.(i) <> l then bs_set top t.set_slot.(i))
    members;
  (* Block scans are lazy and memoized, and the untouched-set scan
     shares one zero vector: most blocks never touch [l]'s set, and in
     a localized sweep most are never even evaluated. *)
  let zero = Array.make nw 0 in
  let scan_done = Array.make nn false in
  let scan_closed = Array.make nn false in
  let scan_acc = Array.make nn zero in
  let scan v =
    if not scan_done.(v) then begin
      scan_done.(v) <- true;
      if v < nb && t.reach.(v) then begin
        let acc = ref zero in
        (try
           List.iter
             (fun line ->
               if line = l then begin
                 scan_closed.(v) <- true;
                 raise Exit
               end
               else if Geometry.set_of_line t.geometry line = sl then
                 match Hashtbl.find_opt t.id_of_line line with
                 | Some i ->
                   if !acc == zero then acc := Array.make nw 0;
                   bs_set !acc t.set_slot.(i)
                 | None -> ())
             (Basic_block.lines t.blocks.(v))
         with Exit -> ());
        scan_acc.(v) <- !acc
      end
    end
  in
  (* Entries only ever *replace* [d.(v)] with freshly allocated arrays,
     so sharing [top] as the initial value is safe. *)
  let d = Array.make nn top in
  let scratch = Array.make nw 0 in
  let eval_changed v =
    scan v;
    if scan_closed.(v) then Array.blit scan_acc.(v) 0 scratch 0 nw
    else if invs.(v) then Array.blit top 0 scratch 0 nw
    else begin
      Array.blit top 0 scratch 0 nw;
      List.iter (fun s -> bs_inter_into scratch d.(s)) t.succs.(v);
      bs_union_into scratch scan_acc.(v)
    end;
    not (int_array_equal scratch d.(v))
  in
  (* Greatest fixpoint from top, swept in postorder (successors before
     predecessors) so forward dependencies resolve within a sweep.
     From an all-top start the only nodes whose transfer can differ
     are the ones referencing [l] itself, so the sweep stays localized
     to their backward slice. *)
  let dirty = Array.make nn false in
  for v = 0 to nb - 1 do
    if t.reach.(v) && refs.(v) then dirty.(v) <- true
  done;
  let pending = ref true in
  while !pending do
    pending := false;
    Array.iter
      (fun v ->
        if dirty.(v) then begin
          dirty.(v) <- false;
          if eval_changed v then begin
            d.(v) <- Array.copy scratch;
            List.iter (fun p -> if t.reach.(p) then dirty.(p) <- true) t.preds.(v)
          end
        end)
      t.post;
    pending := Array.exists Fun.id dirty
  done;
  { r; fe; d; top }

let get_pass t l =
  match Hashtbl.find_opt t.passes l with
  | Some p -> p
  | None ->
    let p = compute_pass t l in
    Hashtbl.add t.passes l p;
    p

let prove t ~block ~index =
  let n = Array.length t.blocks in
  if block < 0 || block >= n then invalid_arg "Abs_cache.prove: block out of range";
  let hints = t.blocks.(block).Basic_block.hints in
  if index < 0 || index >= Array.length hints then
    invalid_arg "Abs_cache.prove: hint index out of range";
  let h = hints.(index) in
  let l = Basic_block.hint_line h in
  let demote =
    match h with Basic_block.Demote _ -> true | Basic_block.Invalidate _ -> false
  in
  if not t.reach.(block) then Proved_noop
  else begin
    let resident_any, resident_may = t.hint_res.(block).(index) in
    let later_inv = ref false in
    for j = index + 1 to Array.length hints - 1 do
      match hints.(j) with
      | Basic_block.Invalidate x when x = l -> later_inv := true
      | _ -> ()
    done;
    let later_inv = !later_inv in
    let succs = t.succs.(block) in
    let ways = t.geometry.Geometry.ways in
    let p = get_pass t l in
    if not resident_may then Proved_noop
    else if later_inv || List.for_all (fun s -> not p.r.(s)) succs then Proved_dead
    else if
      demote
      &&
      match Hashtbl.find_opt t.id_of_line l with
      | Some i -> t.pers.(t.set_of_id.(i))
      | None -> false
    then Proved_persistent
    else begin
      let inter = Array.copy p.top in
      List.iter (fun s -> bs_inter_into inter p.d.(s)) succs;
      if bs_count inter >= ways then Proved_pressure
      else if
        (not demote) && resident_any && succs <> []
        && List.for_all (fun s -> p.fe.(s)) succs
      then Proved_harmful
      else Unproved
    end
  end

(* ------------------------------------------------------------------ *)
(* Static bounds. *)

type bounds = {
  instructions : int;
  lower_misses : int;
  upper_misses : int;
  mpki_lower : float;
  mpki_upper : float;
}

let bounds t ~exec_counts =
  let n = Array.length t.blocks in
  if Array.length exec_counts <> n then None
  else begin
    let instructions = ref 0 in
    for v = 0 to n - 1 do
      instructions := !instructions + (exec_counts.(v) * t.blocks.(v).Basic_block.n_instrs)
    done;
    if !instructions <= 0 then None
    else begin
      let site_sum = Array.make (max 1 t.k) 0 in
      let executed = Array.make (max 1 t.k) false in
      let always = ref 0 in
      Array.iteri
        (fun v fs ->
          let c = exec_counts.(v) in
          Array.iter
            (fun (f : site_fact) ->
              match Hashtbl.find_opt t.id_of_line f.line with
              | None -> ()
              | Some i ->
                if c > 0 then executed.(i) <- true;
                if not f.must_hit then site_sum.(i) <- site_sum.(i) + c;
                if f.always_miss then always := !always + c)
            fs)
        t.facts;
      let upper = ref 0 in
      let cold = ref 0 in
      for i = 0 to t.k - 1 do
        if executed.(i) then incr cold;
        if first_miss_only t t.line_of_id.(i) then
          upper := !upper + min site_sum.(i) 1
        else upper := !upper + site_sum.(i)
      done;
      let lower_misses = max !always !cold in
      let per_ki x = 1000.0 *. Float.of_int x /. Float.of_int !instructions in
      Some
        {
          instructions = !instructions;
          lower_misses;
          upper_misses = !upper;
          mpki_lower = per_ki lower_misses;
          mpki_upper = per_ki !upper;
        }
    end
  end

type min_geometry = {
  coverage : float;
  dominant_blocks : int;
  dominant_lines : int;
  min_ways : int;
  min_size_bytes : int;
}

let min_geometry t ~exec_counts =
  let n = Array.length t.blocks in
  if Array.length exec_counts <> n then None
  else begin
    let weighted = ref [] in
    let total = ref 0 in
    for v = 0 to n - 1 do
      if t.reach.(v) then begin
        let w = exec_counts.(v) * t.blocks.(v).Basic_block.n_instrs in
        total := !total + w;
        if w > 0 then weighted := (v, w) :: !weighted
      end
    done;
    let total = !total in
    if total <= 0 then None
    else begin
      let order =
        List.sort
          (fun (v1, w1) (v2, w2) -> if w1 <> w2 then compare w2 w1 else compare v1 v2)
          !weighted
      in
      let chosen = ref [] in
      let cum = ref 0 in
      List.iter
        (fun (v, w) ->
          if !cum * 10 < total * 9 then begin
            cum := !cum + w;
            chosen := v :: !chosen
          end)
        order;
      let lines = Hashtbl.create 256 in
      List.iter
        (fun v ->
          List.iter (fun l -> Hashtbl.replace lines l ()) (Basic_block.lines t.blocks.(v)))
        !chosen;
      if Hashtbl.length lines = 0 then None
      else begin
        let nsets = Geometry.sets t.geometry in
        let per_set = Array.make nsets 0 in
        Hashtbl.iter
          (fun l () ->
            let s = Geometry.set_of_line t.geometry l in
            per_set.(s) <- per_set.(s) + 1)
          lines;
        let min_ways = Array.fold_left max 1 per_set in
        Some
          {
            coverage = Float.of_int !cum /. Float.of_int total;
            dominant_blocks = List.length !chosen;
            dominant_lines = Hashtbl.length lines;
            min_ways;
            min_size_bytes = nsets * min_ways * Addr.line_size;
          }
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Summary. *)

type summary = {
  blocks : int;
  sites : int;
  must_hit_sites : int;
  must_hit_lru_sites : int;
  always_miss_sites : int;
  persistent_sets : int;
  first_miss_lines : int;
  solver : Fixpoint.stats;
  bounds : bounds option;
  min_geometry : min_geometry option;
}

let summarize ?exec_counts t =
  let sites = ref 0 and mh = ref 0 and mhl = ref 0 and am = ref 0 in
  Array.iter
    (Array.iter (fun (f : site_fact) ->
         incr sites;
         if f.must_hit then incr mh;
         if f.must_hit_lru then incr mhl;
         if f.always_miss then incr am))
    t.facts;
  let blocks = ref 0 in
  for v = 0 to Array.length t.blocks - 1 do
    if t.reach.(v) then incr blocks
  done;
  let blocks = !blocks in
  let persistent_sets = ref 0 in
  Array.iteri
    (fun s ms -> if ms <> [] && t.pers.(s) then incr persistent_sets)
    t.set_members;
  let fml = ref 0 in
  for i = 0 to t.k - 1 do
    if first_miss_only t t.line_of_id.(i) then incr fml
  done;
  let bounds =
    match exec_counts with None -> None | Some ec -> bounds t ~exec_counts:ec
  in
  let min_geometry =
    match exec_counts with None -> None | Some ec -> min_geometry t ~exec_counts:ec
  in
  {
    blocks;
    sites = !sites;
    must_hit_sites = !mh;
    must_hit_lru_sites = !mhl;
    always_miss_sites = !am;
    persistent_sets = !persistent_sets;
    first_miss_lines = !fml;
    solver = t.stats;
    bounds;
    min_geometry;
  }

let bounds_to_json = function
  | None -> Json.Null
  | Some b ->
    Json.Obj
      [
        ("instructions", Json.Int b.instructions);
        ("lower_misses", Json.Int b.lower_misses);
        ("upper_misses", Json.Int b.upper_misses);
        ("mpki_lower", Json.Float b.mpki_lower);
        ("mpki_upper", Json.Float b.mpki_upper);
      ]

let min_geometry_to_json = function
  | None -> Json.Null
  | Some g ->
    Json.Obj
      [
        ("coverage", Json.Float g.coverage);
        ("dominant_blocks", Json.Int g.dominant_blocks);
        ("dominant_lines", Json.Int g.dominant_lines);
        ("min_ways", Json.Int g.min_ways);
        ("min_size_bytes", Json.Int g.min_size_bytes);
      ]

let summary_to_json s =
  Json.Obj
    [
      ("blocks", Json.Int s.blocks);
      ("sites", Json.Int s.sites);
      ("must_hit_sites", Json.Int s.must_hit_sites);
      ("must_hit_lru_sites", Json.Int s.must_hit_lru_sites);
      ("always_miss_sites", Json.Int s.always_miss_sites);
      ("persistent_sets", Json.Int s.persistent_sets);
      ("first_miss_lines", Json.Int s.first_miss_lines);
      ( "solver",
        Json.Obj
          [
            ("iterations", Json.Int s.solver.Fixpoint.iterations);
            ("visits", Json.Int s.solver.Fixpoint.visits);
            ("widenings", Json.Int s.solver.Fixpoint.widenings);
          ] );
      ("bounds", bounds_to_json s.bounds);
      ("min_geometry", min_geometry_to_json s.min_geometry);
    ]
