(** The analysis' view of a program's control-flow graph, plus the
    structural well-formedness layer of the linter.

    The {e flow graph} used by every semantic pass extends the static
    successor relation ({!Ripple_isa.Basic_block.successors}) with the
    fall-through edge of call sites (call block → [return_to]): after a
    call returns, execution resumes at [return_to], so both the callee
    entry and the resumption point are real forward paths.  [Return]
    blocks remain sinks — return targets are resolved dynamically
    through the call stack, and modelling them context-insensitively
    would connect every function to every call site and drown the
    dataflow passes in infeasible paths (DESIGN.md, "Static
    verification").

    Structural checks ({!check}) operate on a raw block array so tests
    can probe deliberately corrupted inputs that {!Ripple_isa.Program.v}
    refuses to construct. *)

module Basic_block := Ripple_isa.Basic_block

val flow_successors : Basic_block.t -> int list
(** Static successors plus the [return_to] resumption edge of (direct
    and indirect) call terminators.  May contain out-of-range ids when
    the block is corrupt; {!check} flags those. *)

val predecessors : Basic_block.t array -> int list array
(** Predecessor lists under {!flow_successors}.  Out-of-range successor
    ids are ignored (the structural layer reports them). *)

val reachable : entry:int -> Basic_block.t array -> bool array
(** Depth-first reachability from [entry] under {!flow_successors}.
    Out-of-range ids (including a bad [entry]) are skipped, never
    raised. *)

val exits : Basic_block.t array -> int list
(** Ids of [Return] and [Halt] blocks — the sinks a post-dominator
    computation hangs its virtual exit on. *)

val check : entry:int -> ?aligned:bool array -> Basic_block.t array -> Finding.t list
(** Layer 1 of the linter: structural invariants.

    Errors: [entry] out of range; [blocks.(i).id <> i]; non-positive
    byte/instruction extents; successor or [return_to] targets out of
    range; blocks laid outside their privilege region
    ({!Ripple_isa.Program.user_base} / [kernel_base]); overlapping byte
    ranges; blocks with [aligned.(i)] set whose address is not
    {!Ripple_isa.Program.block_alignment}-aligned.

    Warnings: blocks unreachable from [entry] in the flow graph
    (orphans).  Reachability is only judged when no dangling-edge or
    entry error was found — on a broken graph it would be noise. *)
