module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Geometry = Ripple_cache.Geometry
module Json = Ripple_util.Json

type provenance = { block : int; line : Addr.line; probability : float; windows : int }

type hint_counts = {
  total : int;
  safe_dead : int;
  safe_pressure : int;
  harmful : int;
  redundant : int;
}

let no_hints = { total = 0; safe_dead = 0; safe_pressure = 0; harmful = 0; redundant = 0 }

type summary = {
  findings : Finding.t list;
  errors : int;
  warnings : int;
  infos : int;
  hints : hint_counts;
  structural_gate : bool;
}

let footprint_lines blocks =
  let lines = Hashtbl.create 4096 in
  Array.iter
    (fun b -> List.iter (fun l -> Hashtbl.replace lines l ()) (Basic_block.lines b))
    blocks;
  lines

let provenance_of provenance ~block ~line =
  List.find_opt (fun p -> p.block = block && p.line = line) provenance

let provenance_clause = function
  | Some p ->
    Printf.sprintf " (injected at P=%.2f over %d windows)" p.probability p.windows
  | None -> ""

let hint_findings ~geometry ~provenance ~entry blocks =
  let footprint = footprint_lines blocks in
  let classified = Invalidation_check.classify ~geometry ~entry blocks in
  let counts = ref no_hints in
  let findings = ref [] in
  List.iter
    (fun ((s : Invalidation_check.site), c) ->
      let prov =
        provenance_of provenance ~block:s.Invalidation_check.block
          ~line:s.Invalidation_check.line
      in
      let why = provenance_clause prov in
      let verb = if s.Invalidation_check.demote then "demotion" else "invalidation" in
      let n = !counts in
      counts := { n with total = n.total + 1 };
      (match c with
      | Invalidation_check.Safe_dead -> counts := { !counts with safe_dead = !counts.safe_dead + 1 }
      | Invalidation_check.Safe_pressure ->
        counts := { !counts with safe_pressure = !counts.safe_pressure + 1 }
      | Invalidation_check.Harmful { reuse_block; conflicts } ->
        counts := { !counts with harmful = !counts.harmful + 1 };
        (* A statically cheap path back to the line is indistinguishable
           from the loop-carried reuse Ripple deliberately targets (the
           line is live in the CFG, dead in the profile).  Profile
           provenance is the tie-breaker: with quoted evidence the
           finding is a [Warning] to audit; an unjustified hint — no
           provenance at all — is an [Error].  Demotions never error:
           the line survives until a genuine conflict arrives. *)
        let severity =
          if s.Invalidation_check.demote || prov <> None then Finding.Warning
          else Finding.Error
        in
        findings :=
          Finding.v severity Finding.Harmful_invalidation ~block:s.Invalidation_check.block
            ~line:s.Invalidation_check.line
            (Printf.sprintf
               "harmful %s: line re-referenced by bb%d after only %d same-set conflict(s) — \
                likely hit-to-miss conversion%s"
               verb reuse_block conflicts why)
          :: !findings
      | Invalidation_check.Redundant { earlier } ->
        counts := { !counts with redundant = !counts.redundant + 1 };
        findings :=
          Finding.v Finding.Warning Finding.Redundant_invalidation
            ~block:s.Invalidation_check.block ~line:s.Invalidation_check.line
            (Printf.sprintf
               "redundant %s: dominated by the hint in bb%d with no intervening reference%s"
               verb earlier why)
          :: !findings);
      if not (Hashtbl.mem footprint s.Invalidation_check.line) then
        findings :=
          Finding.v Finding.Warning Finding.Hint_outside_footprint
            ~block:s.Invalidation_check.block ~line:s.Invalidation_check.line
            (Printf.sprintf "%s operand is not a line of the program text%s" verb why)
          :: !findings)
    classified;
  (List.rev !findings, !counts)

let order findings =
  (* Severity-descending, then by anchor block, stable within. *)
  List.stable_sort
    (fun (a : Finding.t) b ->
      match compare (Finding.severity_rank b.Finding.severity) (Finding.severity_rank a.Finding.severity) with
      | 0 ->
        compare
          (Option.value a.Finding.block ~default:(-1))
          (Option.value b.Finding.block ~default:(-1))
      | c -> c)
    findings

let summarize ~hints ~structural_gate findings =
  let findings = order findings in
  let count sev =
    List.length (List.filter (fun f -> f.Finding.severity = sev) findings)
  in
  {
    findings;
    errors = count Finding.Error;
    warnings = count Finding.Warning;
    infos = count Finding.Info;
    hints;
    structural_gate;
  }

let check_blocks ?(geometry = Geometry.l1i) ?aligned ?(provenance = []) ~entry blocks =
  let structural = Cfg.check ~entry ?aligned blocks in
  let structural_errors =
    List.exists (fun f -> f.Finding.severity = Finding.Error) structural
  in
  if structural_errors then summarize ~hints:no_hints ~structural_gate:true structural
  else begin
    let hint_fs, hints = hint_findings ~geometry ~provenance ~entry blocks in
    summarize ~hints ~structural_gate:false (structural @ hint_fs)
  end

let check_program ?geometry ?provenance program =
  check_blocks ?geometry ~aligned:(Program.aligned program) ?provenance
    ~entry:(Program.entry program) (Program.blocks program)

let max_severity t = Finding.max_severity t.findings

let exit_code t =
  match max_severity t with
  | Some Finding.Error -> 2
  | Some Finding.Warning -> 1
  | Some Finding.Info | None -> 0

let hints_to_json h =
  Json.Obj
    [
      ("total", Json.Int h.total);
      ("safe_dead", Json.Int h.safe_dead);
      ("safe_pressure", Json.Int h.safe_pressure);
      ("harmful", Json.Int h.harmful);
      ("redundant", Json.Int h.redundant);
    ]

let to_json t =
  Json.Obj
    [
      ("errors", Json.Int t.errors);
      ("warnings", Json.Int t.warnings);
      ("infos", Json.Int t.infos);
      ("hints", hints_to_json t.hints);
      ("structural_gate", Json.Bool t.structural_gate);
      ("findings", Json.List (List.map Finding.to_json t.findings));
    ]

let pp fmt t =
  (* Info findings (orphan blocks on generated CFGs number in the
     hundreds) are folded into the trailer count; the JSON form keeps
     every finding. *)
  List.iter
    (fun (f : Finding.t) ->
      if f.Finding.severity <> Finding.Info then Format.fprintf fmt "%a@." Finding.pp f)
    t.findings;
  Format.fprintf fmt
    "@[%d error(s), %d warning(s), %d info(s); hints: %d total, %d safe (dead), %d safe \
     (pressure), %d harmful, %d redundant%s@]"
    t.errors t.warnings t.infos t.hints.total t.hints.safe_dead t.hints.safe_pressure
    t.hints.harmful t.hints.redundant
    (if t.structural_gate then " [semantic layers skipped: structural errors]" else "")
