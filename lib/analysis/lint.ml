module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Geometry = Ripple_cache.Geometry
module Json = Ripple_util.Json

type provenance = { block : int; line : Addr.line; probability : float; windows : int }

type hint_counts = {
  total : int;
  safe_dead : int;
  safe_pressure : int;
  harmful : int;
  redundant : int;
}

let no_hints = { total = 0; safe_dead = 0; safe_pressure = 0; harmful = 0; redundant = 0 }

type proof_counts = {
  proved_noop : int;
  proved_dead : int;
  proved_persistent : int;
  proved_pressure : int;
  proved_harmful : int;
  unproved : int;
  disagreements : int;
}

let no_proofs =
  {
    proved_noop = 0;
    proved_dead = 0;
    proved_persistent = 0;
    proved_pressure = 0;
    proved_harmful = 0;
    unproved = 0;
    disagreements = 0;
  }

let proved_safe p = p.proved_dead + p.proved_persistent + p.proved_pressure

type summary = {
  findings : Finding.t list;
  errors : int;
  warnings : int;
  infos : int;
  hints : hint_counts;
  proofs : proof_counts;
  abstract : Abs_cache.summary option;
  structural_gate : bool;
}

let footprint_lines blocks =
  let lines = Hashtbl.create 4096 in
  Array.iter
    (fun b -> List.iter (fun l -> Hashtbl.replace lines l ()) (Basic_block.lines b))
    blocks;
  lines

let provenance_of provenance ~block ~line =
  List.find_opt (fun p -> p.block = block && p.line = line) provenance

let provenance_clause = function
  | Some p ->
    Printf.sprintf " (injected at P=%.2f over %d windows)" p.probability p.windows
  | None -> ""

let hint_findings ~geometry ~provenance ~entry ~abs blocks =
  let footprint = footprint_lines blocks in
  let classified = Invalidation_check.classify ~geometry ~entry blocks in
  let counts = ref no_hints in
  let proofs = ref no_proofs in
  let findings = ref [] in
  List.iter
    (fun ((s : Invalidation_check.site), c) ->
      let verdict =
        Abs_cache.prove abs ~block:s.Invalidation_check.block
          ~index:s.Invalidation_check.index
      in
      (proofs :=
         (let p = !proofs in
          match verdict with
          | Abs_cache.Proved_noop -> { p with proved_noop = p.proved_noop + 1 }
          | Abs_cache.Proved_dead -> { p with proved_dead = p.proved_dead + 1 }
          | Abs_cache.Proved_persistent ->
            { p with proved_persistent = p.proved_persistent + 1 }
          | Abs_cache.Proved_pressure -> { p with proved_pressure = p.proved_pressure + 1 }
          | Abs_cache.Proved_harmful -> { p with proved_harmful = p.proved_harmful + 1 }
          | Abs_cache.Unproved -> { p with unproved = p.unproved + 1 }));
      if Invalidation_check.disagreement c verdict then begin
        proofs := { !proofs with disagreements = !proofs.disagreements + 1 };
        findings :=
          Finding.v Finding.Error Finding.Classifier_disagreement
            ~block:s.Invalidation_check.block ~line:s.Invalidation_check.line
            (Printf.sprintf
               "classifier disagreement: path search says %s but the abstract proof says \
                %s — one of the two analyses is wrong about this hint"
               (Invalidation_check.classification_name c)
               (Abs_cache.verdict_name verdict))
          :: !findings
      end;
      let prov =
        provenance_of provenance ~block:s.Invalidation_check.block
          ~line:s.Invalidation_check.line
      in
      let why = provenance_clause prov in
      let verb = if s.Invalidation_check.demote then "demotion" else "invalidation" in
      let n = !counts in
      counts := { n with total = n.total + 1 };
      (match c with
      | Invalidation_check.Safe_dead -> counts := { !counts with safe_dead = !counts.safe_dead + 1 }
      | Invalidation_check.Safe_pressure ->
        counts := { !counts with safe_pressure = !counts.safe_pressure + 1 }
      | Invalidation_check.Harmful { reuse_block; conflicts } ->
        counts := { !counts with harmful = !counts.harmful + 1 };
        (* A statically cheap path back to the line is indistinguishable
           from the loop-carried reuse Ripple deliberately targets (the
           line is live in the CFG, dead in the profile).  Profile
           provenance is the tie-breaker: with quoted evidence the
           finding is a [Warning] to audit; an unjustified hint — no
           provenance at all — is an [Error].  Demotions never error:
           the line survives until a genuine conflict arrives. *)
        let severity =
          if s.Invalidation_check.demote || prov <> None then Finding.Warning
          else Finding.Error
        in
        findings :=
          Finding.v severity Finding.Harmful_invalidation ~block:s.Invalidation_check.block
            ~line:s.Invalidation_check.line
            (Printf.sprintf
               "harmful %s: line re-referenced by bb%d after only %d same-set conflict(s) — \
                likely hit-to-miss conversion%s"
               verb reuse_block conflicts why)
          :: !findings
      | Invalidation_check.Redundant { earlier } ->
        counts := { !counts with redundant = !counts.redundant + 1 };
        findings :=
          Finding.v Finding.Warning Finding.Redundant_invalidation
            ~block:s.Invalidation_check.block ~line:s.Invalidation_check.line
            (Printf.sprintf
               "redundant %s: dominated by the hint in bb%d with no intervening reference%s"
               verb earlier why)
          :: !findings);
      if not (Hashtbl.mem footprint s.Invalidation_check.line) then
        findings :=
          Finding.v Finding.Warning Finding.Hint_outside_footprint
            ~block:s.Invalidation_check.block ~line:s.Invalidation_check.line
            (Printf.sprintf "%s operand is not a line of the program text%s" verb why)
          :: !findings)
    classified;
  (List.rev !findings, !counts, !proofs)

let order findings =
  (* Severity-descending, then by anchor block, stable within. *)
  List.stable_sort
    (fun (a : Finding.t) b ->
      match compare (Finding.severity_rank b.Finding.severity) (Finding.severity_rank a.Finding.severity) with
      | 0 ->
        compare
          (Option.value a.Finding.block ~default:(-1))
          (Option.value b.Finding.block ~default:(-1))
      | c -> c)
    findings

let summarize ~hints ~proofs ~abstract ~structural_gate findings =
  let findings = order findings in
  let count sev =
    List.length (List.filter (fun f -> f.Finding.severity = sev) findings)
  in
  {
    findings;
    errors = count Finding.Error;
    warnings = count Finding.Warning;
    infos = count Finding.Info;
    hints;
    proofs;
    abstract;
    structural_gate;
  }

let check_blocks ?(geometry = Geometry.l1i) ?aligned ?(provenance = []) ?exec_counts ?obs
    ~entry blocks =
  let layer name f =
    match obs with
    | None -> f ()
    | Some o -> Ripple_obs.Span.with_span (Ripple_obs.Run.spans o) name f
  in
  let structural = layer "structural" (fun () -> Cfg.check ~entry ?aligned blocks) in
  let structural_errors =
    List.exists (fun f -> f.Finding.severity = Finding.Error) structural
  in
  if structural_errors then
    summarize ~hints:no_hints ~proofs:no_proofs ~abstract:None ~structural_gate:true
      structural
  else begin
    let abs = layer "abstract" (fun () -> Abs_cache.analyze ~geometry ~entry blocks) in
    let abstract = Some (Abs_cache.summarize ?exec_counts abs) in
    let hint_fs, hints, proofs =
      layer "hints" (fun () -> hint_findings ~geometry ~provenance ~entry ~abs blocks)
    in
    summarize ~hints ~proofs ~abstract ~structural_gate:false (structural @ hint_fs)
  end

let check_program ?geometry ?provenance ?exec_counts ?obs program =
  check_blocks ?geometry ~aligned:(Program.aligned program) ?provenance ?exec_counts ?obs
    ~entry:(Program.entry program) (Program.blocks program)

let max_severity t = Finding.max_severity t.findings

let exit_code t =
  match max_severity t with
  | Some Finding.Error -> 2
  | Some Finding.Warning -> 1
  | Some Finding.Info | None -> 0

let hints_to_json h =
  Json.Obj
    [
      ("total", Json.Int h.total);
      ("safe_dead", Json.Int h.safe_dead);
      ("safe_pressure", Json.Int h.safe_pressure);
      ("harmful", Json.Int h.harmful);
      ("redundant", Json.Int h.redundant);
    ]

let proofs_to_json p =
  Json.Obj
    [
      ("proved_noop", Json.Int p.proved_noop);
      ("proved_dead", Json.Int p.proved_dead);
      ("proved_persistent", Json.Int p.proved_persistent);
      ("proved_pressure", Json.Int p.proved_pressure);
      ("proved_harmful", Json.Int p.proved_harmful);
      ("unproved", Json.Int p.unproved);
      ("disagreements", Json.Int p.disagreements);
    ]

let to_json t =
  Json.Obj
    [
      ("errors", Json.Int t.errors);
      ("warnings", Json.Int t.warnings);
      ("infos", Json.Int t.infos);
      ("hints", hints_to_json t.hints);
      ("proofs", proofs_to_json t.proofs);
      ("structural_gate", Json.Bool t.structural_gate);
      ( "abstract",
        match t.abstract with
        | Some a -> Abs_cache.summary_to_json a
        | None -> Json.Null );
      ("findings", Json.List (List.map Finding.to_json t.findings));
    ]

let pp fmt t =
  (* Info findings (orphan blocks on generated CFGs number in the
     hundreds) are folded into the trailer count; the JSON form keeps
     every finding. *)
  List.iter
    (fun (f : Finding.t) ->
      if f.Finding.severity <> Finding.Info then Format.fprintf fmt "%a@." Finding.pp f)
    t.findings;
  Format.fprintf fmt
    "@[%d error(s), %d warning(s), %d info(s); hints: %d total, %d safe (dead), %d safe \
     (pressure), %d harmful, %d redundant; proofs: %d safe, %d noop, %d harmful, %d \
     unproved, %d disagreement(s)%s@]"
    t.errors t.warnings t.infos t.hints.total t.hints.safe_dead t.hints.safe_pressure
    t.hints.harmful t.hints.redundant (proved_safe t.proofs) t.proofs.proved_noop
    t.proofs.proved_harmful t.proofs.unproved t.proofs.disagreements
    (if t.structural_gate then " [semantic layers skipped: structural errors]" else "")
