module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Geometry = Ripple_cache.Geometry

type site = { block : int; index : int; line : Addr.line; demote : bool }

type classification =
  | Safe_dead
  | Safe_pressure
  | Harmful of { reuse_block : int; conflicts : int }
  | Redundant of { earlier : int }

let classification_name = function
  | Safe_dead -> "safe_dead"
  | Safe_pressure -> "safe_pressure"
  | Harmful _ -> "harmful"
  | Redundant _ -> "redundant"

let sites_of blocks =
  let acc = ref [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      Array.iteri
        (fun index h ->
          let demote = match h with Basic_block.Demote _ -> true | _ -> false in
          acc :=
            { block = b.Basic_block.id; index; line = Basic_block.hint_line h; demote }
            :: !acc)
        b.Basic_block.hints)
    blocks;
  List.rev !acc

let block_hints_line (b : Basic_block.t) line =
  Array.exists (fun h -> Basic_block.hint_line h = line) b.Basic_block.hints

(* Forward must-analysis for one hinted line: at which blocks does "the
   line has been hinted away and not referenced since" hold on ALL
   incoming paths?  Optimistic initialization (true everywhere except
   roots), decreasing fixpoint. *)
let must_invalidated ~blocks ~preds line =
  let n = Array.length blocks in
  let refs = Array.init n (fun i -> List.mem line (Basic_block.lines blocks.(i))) in
  let hinted = Array.init n (fun i -> block_hints_line blocks.(i) line) in
  let inv_in = Array.make n true in
  Array.iteri (fun i ps -> if ps = [] then inv_in.(i) <- false) preds;
  let out i = hinted.(i) || (inv_in.(i) && not refs.(i)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if inv_in.(i) && preds.(i) <> [] then begin
        let v = List.for_all out preds.(i) in
        if not v then begin
          inv_in.(i) <- false;
          changed := true
        end
      end
    done
  done;
  (inv_in, refs)

(* Bounded forward search from the hint: can the victim line be
   re-referenced while fewer than [ways] distinct same-set lines have
   been touched?  States are explored in order of accumulated conflict
   count (bucket queue); a block is re-expanded only with a strictly
   smaller count, so the walk is O(blocks * ways).  Paths saturate (and
   are pruned) at [ways] conflicts — the victim's ideal eviction point —
   or when they cross another hint on the same line. *)
let find_harmful ~geometry ~blocks ~start ~line =
  let ways = geometry.Geometry.ways in
  let n = Array.length blocks in
  let set = Geometry.set_of_line geometry line in
  let best = Array.make n max_int in
  let buckets = Array.make (max 1 ways) [] in
  let push block acc c =
    if block >= 0 && block < n && c < ways && c < best.(block) then begin
      best.(block) <- c;
      buckets.(c) <- (block, acc) :: buckets.(c)
    end
  in
  List.iter (fun s -> push s [] 0) (Cfg.flow_successors blocks.(start));
  let result = ref None in
  let c = ref 0 in
  while !result = None && !c < ways do
    match buckets.(!c) with
    | [] -> incr c
    | (block, acc) :: rest ->
      buckets.(!c) <- rest;
      if best.(block) >= !c then begin
        (* Scan the block's lines in execution order, growing the
           conflict set as same-set lines appear before the victim. *)
        let acc = ref acc and count = ref !c and live = ref true in
        List.iter
          (fun l ->
            if !live && !result = None then begin
              if l = line then result := Some (block, !count)
              else if
                !count < ways
                && Geometry.set_of_line geometry l = set
                && not (List.mem l !acc)
              then begin
                acc := l :: !acc;
                incr count;
                if !count >= ways then live := false
              end
            end)
          (Basic_block.lines blocks.(block));
        if !result = None && !live && not (block_hints_line blocks.(block) line) then
          List.iter (fun s -> push s !acc !count) (Cfg.flow_successors blocks.(block))
      end
  done;
  !result

let classify ~geometry ~entry blocks =
  let sites = sites_of blocks in
  let tracked = Array.of_list (List.map (fun s -> s.line) sites) in
  let liveness = Liveness.compute ~blocks ~tracked in
  let dominance = Dominance.of_blocks ~entry blocks in
  let preds = Cfg.predecessors blocks in
  (* Per distinct line: must-invalidated state and the hinting blocks. *)
  let by_line = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem by_line s.line) then
        Hashtbl.add by_line s.line (must_invalidated ~blocks ~preds s.line))
    sites;
  let hint_blocks line =
    List.filter_map (fun s -> if s.line = line then Some s.block else None) sites
  in
  List.map
    (fun s ->
      let inv_in, refs = Hashtbl.find by_line s.line in
      let duplicate =
        (* An earlier hint on the same line in the same block: the later
           one always finds the line gone. *)
        let h = blocks.(s.block).Basic_block.hints in
        let dup = ref false in
        for i = 0 to s.index - 1 do
          if Basic_block.hint_line h.(i) = s.line then dup := true
        done;
        !dup
      in
      let classification =
        if duplicate then Redundant { earlier = s.block }
        else if inv_in.(s.block) && not refs.(s.block) then begin
          (* Already hint-dead on every path in; cite a dominating hint. *)
          match
            List.find_opt
              (fun d -> d <> s.block && Dominance.dominates dominance ~dom:d s.block)
              (hint_blocks s.line)
          with
          | Some earlier -> Redundant { earlier }
          | None -> (
            (* All-paths-invalidated but no single dominating witness
               (e.g. both arms of a diamond hint the line): still safe,
               fall through to the reachability reasons. *)
            match find_harmful ~geometry ~blocks ~start:s.block ~line:s.line with
            | Some (reuse_block, conflicts) -> Harmful { reuse_block; conflicts }
            | None ->
              if Liveness.live_out liveness ~block:s.block ~line:s.line then Safe_pressure
              else Safe_dead)
        end
        else begin
          match find_harmful ~geometry ~blocks ~start:s.block ~line:s.line with
          | Some (reuse_block, conflicts) -> Harmful { reuse_block; conflicts }
          | None ->
            if Liveness.live_out liveness ~block:s.block ~line:s.line then Safe_pressure
            else Safe_dead
        end
      in
      (s, classification))
    sites

let classify_proved ~geometry ~entry blocks =
  let classified = classify ~geometry ~entry blocks in
  let abs = Abs_cache.analyze ~geometry ~entry blocks in
  List.map
    (fun (s, c) -> (s, c, Abs_cache.prove abs ~block:s.block ~index:s.index))
    classified

let disagreement c (v : Abs_cache.verdict) =
  match (c, v) with
  | Harmful _, (Abs_cache.Proved_dead | Abs_cache.Proved_pressure) -> true
  | (Safe_dead | Safe_pressure), Abs_cache.Proved_harmful -> true
  | _ -> false
