module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program

let flow_successors (b : Basic_block.t) =
  match b.Basic_block.term with
  | Basic_block.Call { callee; return_to } -> [ callee; return_to ]
  | Basic_block.Indirect_call { callees; return_to } -> return_to :: Array.to_list callees
  | _ -> Basic_block.successors b

let predecessors blocks =
  let n = Array.length blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      List.iter
        (fun s -> if s >= 0 && s < n then preds.(s) <- i :: preds.(s))
        (flow_successors b))
    blocks;
  preds

let reachable ~entry blocks =
  let n = Array.length blocks in
  let seen = Array.make n false in
  let stack = Stack.create () in
  if entry >= 0 && entry < n then Stack.push entry stack;
  while not (Stack.is_empty stack) do
    let i = Stack.pop stack in
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter
        (fun s -> if s >= 0 && s < n && not seen.(s) then Stack.push s stack)
        (flow_successors blocks.(i))
    end
  done;
  seen

let exits blocks =
  let acc = ref [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      match b.Basic_block.term with
      | Basic_block.Return | Basic_block.Halt -> acc := b.Basic_block.id :: !acc
      | _ -> ())
    blocks;
  List.rev !acc

(* ---------------------------- structural ---------------------------- *)

let check_extents findings (b : Basic_block.t) =
  if b.Basic_block.bytes <= 0 || b.Basic_block.n_instrs <= 0 then
    findings :=
      Finding.v Finding.Error Finding.Nonpositive_extent ~block:b.Basic_block.id
        (Printf.sprintf "block has %d bytes / %d instructions; both must be positive"
           b.Basic_block.bytes b.Basic_block.n_instrs)
      :: !findings

let check_edges findings n (b : Basic_block.t) =
  let dangling = ref false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then begin
        dangling := true;
        findings :=
          Finding.v Finding.Error Finding.Dangling_successor ~block:b.Basic_block.id
            (Printf.sprintf "successor %d outside [0, %d)" s n)
          :: !findings
      end)
    (Basic_block.successors b);
  (match b.Basic_block.term with
  | Basic_block.Call { return_to; _ } | Basic_block.Indirect_call { return_to; _ } ->
    if return_to < 0 || return_to >= n then begin
      dangling := true;
      findings :=
        Finding.v Finding.Error Finding.Dangling_return ~block:b.Basic_block.id
          (Printf.sprintf "return_to %d outside [0, %d)" return_to n)
        :: !findings
    end
  | _ -> ());
  !dangling

let check_region findings (b : Basic_block.t) =
  let addr = b.Basic_block.addr and stop = b.Basic_block.addr + b.Basic_block.bytes in
  let ok =
    match b.Basic_block.privilege with
    | Basic_block.User -> addr >= Program.user_base && stop <= Program.kernel_base
    | Basic_block.Kernel -> addr >= Program.kernel_base
  in
  if not ok then
    findings :=
      Finding.v Finding.Error Finding.Region_violation ~block:b.Basic_block.id
        (Printf.sprintf "%s block spans [0x%x, 0x%x) outside its text region"
           (match b.Basic_block.privilege with Basic_block.User -> "user" | _ -> "kernel")
           addr stop)
      :: !findings

let check_overlaps findings blocks =
  let by_addr = Array.copy blocks in
  Array.sort
    (fun (a : Basic_block.t) b -> compare a.Basic_block.addr b.Basic_block.addr)
    by_addr;
  for i = 0 to Array.length by_addr - 2 do
    let a = by_addr.(i) and b = by_addr.(i + 1) in
    if a.Basic_block.addr + a.Basic_block.bytes > b.Basic_block.addr then
      findings :=
        Finding.v Finding.Error Finding.Overlapping_blocks ~block:b.Basic_block.id
          (Printf.sprintf "byte range overlaps block %d ([0x%x, 0x%x) vs start 0x%x)"
             a.Basic_block.id a.Basic_block.addr
             (a.Basic_block.addr + a.Basic_block.bytes)
             b.Basic_block.addr)
        :: !findings
  done

let check_alignment findings aligned (b : Basic_block.t) =
  let i = b.Basic_block.id in
  if
    i >= 0
    && i < Array.length aligned
    && aligned.(i)
    && b.Basic_block.addr mod Program.block_alignment <> 0
  then
    findings :=
      Finding.v Finding.Error Finding.Misaligned_block ~block:i
        (Printf.sprintf "alignment requested but 0x%x is not %d-byte aligned"
           b.Basic_block.addr Program.block_alignment)
      :: !findings

let check ~entry ?aligned blocks =
  let n = Array.length blocks in
  let findings = ref [] in
  let entry_ok = entry >= 0 && entry < n in
  if not entry_ok then
    findings :=
      Finding.v Finding.Error Finding.Entry_out_of_range
        (Printf.sprintf "entry %d outside [0, %d)" entry n)
      :: !findings;
  let any_dangling = ref false in
  Array.iteri
    (fun i (b : Basic_block.t) ->
      if b.Basic_block.id <> i then
        findings :=
          Finding.v Finding.Error Finding.Id_mismatch ~block:i
            (Printf.sprintf "blocks.(%d) carries id %d" i b.Basic_block.id)
          :: !findings;
      check_extents findings b;
      if check_edges findings n b then any_dangling := true;
      check_region findings b;
      match aligned with Some a -> check_alignment findings a b | None -> ())
    blocks;
  check_overlaps findings blocks;
  (* Orphan detection is only meaningful on a graph whose edges resolve.
     Orphans are [Info]: the CFG generator legitimately emits landing
     blocks that no static edge reaches (e.g. after an indirect jump
     whose target table never selects them), so they are an observation
     about the binary, not a defect in it. *)
  if entry_ok && not !any_dangling then begin
    let seen = reachable ~entry blocks in
    Array.iteri
      (fun i ok ->
        if not ok then
          findings :=
            Finding.v Finding.Info Finding.Unreachable_block ~block:i
              "unreachable from the entry block (orphan)"
            :: !findings)
      seen
  end;
  List.rev !findings
