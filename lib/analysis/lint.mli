(** The static verifier's front door: run every layer, aggregate
    findings, render them for humans and machines.

    Four layers (DESIGN.md "Static verification" and "Abstract cache
    analysis"):

    + structural CFG checks ({!Cfg.check}) — [Error]s here gate the
      rest: semantic passes over a graph with dangling edges or bogus
      layout would only add noise, so they are skipped;
    + dominator/post-dominator trees ({!Dominance}) — consumed by the
      hint classification (redundancy witnesses);
    + cache-line liveness and hint classification ({!Liveness},
      {!Invalidation_check}) — every injected hint is classified
      safe/harmful/redundant;
    + abstract cache interpretation ({!Abs_cache}) — must/may/
      persistence facts, a proof verdict per hint, static MPKI bounds,
      and a cross-check: whenever the path-search classification and
      the abstract verdict contradict each other
      ({!Invalidation_check.disagreement}), a [Classifier_disagreement]
      [Error] fires — disagreement means one analysis is unsound, so
      nothing downstream should be trusted.

    Severity mapping for hint classifications: a harmful {e
    invalidation} with no profile {!provenance} is an [Error] — nothing
    justifies a hint that statically converts hits to misses.  With
    provenance it is a [Warning]: a statically cheap path back to the
    line is exactly the loop-carried-but-profile-dead reuse Ripple
    deliberately targets, so quoted profile evidence (P over N windows)
    downgrades the finding to an audit item.  A harmful {e demotion} is
    always a [Warning] (the line survives until a genuine conflict
    arrives); redundant hints and hints whose operand is outside the
    program's text are [Warning]s (pure overhead).  Safe hints produce
    no finding — only the summary counters. *)

module Addr := Ripple_isa.Addr
module Basic_block := Ripple_isa.Basic_block
module Program := Ripple_isa.Program
module Geometry := Ripple_cache.Geometry

(** Why a hint exists: the injector's per-decision evidence
    (conditional probability and covered-window support), quoted in
    findings so a flagged hint can be traced back to its profile
    justification. *)
type provenance = {
  block : int;
  line : Addr.line;
  probability : float;
  windows : int;
}

type hint_counts = {
  total : int;
  safe_dead : int;
  safe_pressure : int;
  harmful : int;
  redundant : int;
}

(** Abstract-proof verdict counters over all hint sites (zero when the
    structural gate fired). *)
type proof_counts = {
  proved_noop : int;
  proved_dead : int;
  proved_persistent : int;
  proved_pressure : int;
  proved_harmful : int;
  unproved : int;
  disagreements : int;  (** cross-check findings fired *)
}

val proved_safe : proof_counts -> int
(** [proved_dead + proved_persistent + proved_pressure] — the sites
    {!Abs_cache.proved_safe} accepts. *)

type summary = {
  findings : Finding.t list;  (** severity-descending, then block order *)
  errors : int;
  warnings : int;
  infos : int;
  hints : hint_counts;
  proofs : proof_counts;
  abstract : Abs_cache.summary option;
      (** [None] when the structural gate suppressed the semantic
          layers *)
  structural_gate : bool;
      (** [true] when structural errors suppressed the semantic layers *)
}

val check_blocks :
  ?geometry:Geometry.t ->
  ?aligned:bool array ->
  ?provenance:provenance list ->
  ?exec_counts:int array ->
  ?obs:Ripple_obs.Run.t ->
  entry:int ->
  Basic_block.t array ->
  summary
(** Lint a raw block array ([geometry] defaults to {!Geometry.l1i}).
    [exec_counts] (per-block execution counts from a profile) enables
    the static MPKI bounds and minimal-geometry estimate in
    [abstract]; [obs] records one child span per layer ([structural],
    [abstract], [hints]) on the caller's open span.  Exposed separately
    from {!check_program} so corrupted inputs that
    {!Ripple_isa.Program.v} would refuse can be probed in tests. *)

val check_program :
  ?geometry:Geometry.t ->
  ?provenance:provenance list ->
  ?exec_counts:int array ->
  ?obs:Ripple_obs.Run.t ->
  Program.t ->
  summary
(** {!check_blocks} over a laid-out program, with its entry and
    alignment requests. *)

val max_severity : summary -> Finding.severity option

val exit_code : summary -> int
(** The CLI contract: [0] — no findings above [Info]; [1] — warnings;
    [2] — errors. *)

val to_json : summary -> Ripple_util.Json.t
(** Deterministic: [{"errors", "warnings", "infos", "hints": {...},
    "proofs": {...}, "structural_gate", "abstract": {...}|null,
    "findings": [...]}]. *)

val pp : Format.formatter -> summary -> unit
(** Human rendering: one line per [Warning]/[Error] finding plus a count
    trailer; [Info] findings appear only in the trailer (and in
    {!to_json}). *)
