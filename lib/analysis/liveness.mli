(** Backward may-reference ("hit-liveness") dataflow over cache lines.

    A tracked line is {e live} at a program point when some flow-graph
    path from that point reaches a block that touches the line {e
    without first crossing another hint on the same line}.  Formally,
    per block [b] over the {!Cfg.flow_successors} graph:

    {v
      gen(b)   = tracked lines touched by b's original code
      kill(b)  = tracked lines operated on by b's injected hints
      out(b)   = U in(s), s in flow-successors(b)
      in(b)    = gen(b) U (out(b) \ kill(b))
    v}

    The block body executes before its hints (hints are appended at the
    block's end), so [gen] wins over [kill] in [in(b)] — a block that
    references then invalidates a line still exposes the reference to
    its predecessors.  Hints kill because a reference downstream of
    another hint on the same line misses regardless of what an upstream
    hint did: for classifying upstream invalidations, such references
    are not at risk of hit-to-miss conversion.

    The lattice is a finite powerset (only the lines under scrutiny —
    in practice, the hinted lines — are tracked), the transfer is
    monotone, and the worklist fixpoint therefore terminates; sets are
    bit-packed so the pass is linear in practice. *)

module Addr := Ripple_isa.Addr
module Basic_block := Ripple_isa.Basic_block

type t

val compute : blocks:Basic_block.t array -> tracked:Addr.line array -> t
(** Fixpoint over [blocks] for the [tracked] lines (duplicates in
    [tracked] are harmless).  Out-of-range successor ids are ignored;
    run {!Cfg.check} first. *)

val live_in : t -> block:int -> line:Addr.line -> bool
val live_out : t -> block:int -> line:Addr.line -> bool
(** [false] for untracked lines and out-of-range blocks. *)
