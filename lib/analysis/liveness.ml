module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block

type t = {
  index : (Addr.line, int) Hashtbl.t;  (* tracked line -> bit index *)
  words : int;  (* bitset words per block *)
  live_in : int array;  (* n_blocks * words *)
  live_out : int array;
}

let bits_per_word = Sys.int_size

let set_bit a ~base i =
  let w = base + (i / bits_per_word) and b = i mod bits_per_word in
  a.(w) <- a.(w) lor (1 lsl b)

let get_bit a ~base i =
  let w = base + (i / bits_per_word) and b = i mod bits_per_word in
  a.(w) land (1 lsl b) <> 0

let compute ~blocks ~tracked =
  let index = Hashtbl.create (Array.length tracked * 2) in
  Array.iter
    (fun line ->
      if not (Hashtbl.mem index line) then Hashtbl.add index line (Hashtbl.length index))
    tracked;
  let k = Hashtbl.length index in
  let words = max 1 ((k + bits_per_word - 1) / bits_per_word) in
  let n = Array.length blocks in
  let live_in = Array.make (n * words) 0 and live_out = Array.make (n * words) 0 in
  let gen = Array.make (n * words) 0 and kill = Array.make (n * words) 0 in
  Array.iteri
    (fun i (b : Basic_block.t) ->
      let base = i * words in
      List.iter
        (fun line ->
          match Hashtbl.find_opt index line with
          | Some bit -> set_bit gen ~base bit
          | None -> ())
        (Basic_block.lines b);
      Array.iter
        (fun h ->
          match Hashtbl.find_opt index (Basic_block.hint_line h) with
          | Some bit -> set_bit kill ~base bit
          | None -> ())
        b.Basic_block.hints)
    blocks;
  let preds = Cfg.predecessors blocks in
  (* Worklist fixpoint, seeded with every block; backward flow, so a
     change to in(b) re-queues b's predecessors. *)
  let queued = Array.make n true in
  let queue = Queue.create () in
  for i = n - 1 downto 0 do
    Queue.add i queue
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    queued.(i) <- false;
    let base = i * words in
    (* out(i) = union of in(s) *)
    List.iter
      (fun s ->
        if s >= 0 && s < n then begin
          let sbase = s * words in
          for w = 0 to words - 1 do
            live_out.(base + w) <- live_out.(base + w) lor live_in.(sbase + w)
          done
        end)
      (Cfg.flow_successors blocks.(i));
    (* in(i) = gen(i) | (out(i) & ~kill(i)) *)
    let changed = ref false in
    for w = 0 to words - 1 do
      let v = gen.(base + w) lor (live_out.(base + w) land lnot kill.(base + w)) in
      if v <> live_in.(base + w) then begin
        live_in.(base + w) <- v;
        changed := true
      end
    done;
    if !changed then
      List.iter
        (fun p ->
          if not queued.(p) then begin
            queued.(p) <- true;
            Queue.add p queue
          end)
        preds.(i)
  done;
  { index; words; live_in; live_out }

let lookup t a ~block ~line =
  match Hashtbl.find_opt t.index line with
  | None -> false
  | Some bit ->
    let n = Array.length a / t.words in
    if block < 0 || block >= n then false else get_bit a ~base:(block * t.words) bit

let live_in t ~block ~line = lookup t t.live_in ~block ~line
let live_out t ~block ~line = lookup t t.live_out ~block ~line
