module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type stats = { iterations : int; visits : int; widenings : int }

module Make (D : DOMAIN) = struct
  type result = { in_ : D.t option array; out : D.t option array; stats : stats }

  let solve ?widen ?(widen_after = max_int) ~n ~entries ~preds ~transfer () =
    let in_ = Array.make n None in
    let out = Array.make n None in
    (* Successor lists, inverted from [preds]: a change to out(v) must
       reach exactly the nodes that read it. *)
    let succs = Array.make n [] in
    Array.iteri
      (fun v ps ->
        List.iter (fun p -> if p >= 0 && p < n then succs.(p) <- v :: succs.(p)) ps)
      preds;
    Array.iteri (fun v l -> succs.(v) <- List.rev l) succs;
    let refreshes = Array.make n 0 in
    let iterations = ref 0 and visits = ref 0 and widenings = ref 0 in
    (* Reverse postorder over [succs] from the entry nodes.  Processing
       a sweep in this order resolves every forward edge within the
       sweep, so a high-fan-in join point (e.g. the resume hub of a
       closed interprocedural graph) absorbs all of its predecessors'
       changes and is evaluated once per sweep, instead of once per
       arriving change as a FIFO worklist would. *)
    let order = Array.make n max_int in
    let visited = Array.make n false in
    let postctr = ref n in
    let stack = Stack.create () in
    let dfs_root r =
      if not visited.(r) then begin
        visited.(r) <- true;
        Stack.push (r, succs.(r)) stack;
        while not (Stack.is_empty stack) do
          let v, rest = Stack.pop stack in
          match rest with
          | [] ->
            decr postctr;
            order.(v) <- !postctr
          | s :: tl ->
            Stack.push (v, tl) stack;
            if s >= 0 && s < n && not visited.(s) then begin
              visited.(s) <- true;
              Stack.push (s, succs.(s)) stack
            end
        done
      end
    in
    List.iter (fun (v, _) -> if v >= 0 && v < n then dfs_root v) entries;
    let by_order = Array.init n (fun v -> v) in
    Array.sort (fun a b -> compare (order.(a), a) (order.(b), b)) by_order;
    let dirty = Array.make n false in
    (* Propagation-style chaotic iteration: a change to out(p) is
       joined directly into in(s) for each successor s, rather than
       re-folding *all* of s's predecessors on every refresh.  Join is
       monotone and idempotent and in(v) only ever grows, so the least
       fixpoint is the same, but a node with many predecessors (a join
       point, or the resume hub of a closed interprocedural graph) pays
       one join per changed edge instead of degree-many. *)
    let push v d =
      match in_.(v) with
      | None ->
        in_.(v) <- Some d;
        true
      | Some old ->
        let j = D.join old d in
        if D.equal old j then false
        else begin
          refreshes.(v) <- refreshes.(v) + 1;
          let j =
            if refreshes.(v) >= widen_after then begin
              match widen with
              | Some w ->
                incr widenings;
                w old j
              | None -> j
            end
            else j
          in
          (* A widening may return something equal to the old value (it
             has stabilised); stop propagating in that case too. *)
          if D.equal old j then false
          else begin
            in_.(v) <- Some j;
            true
          end
        end
    in
    (* Entry facts are joined into in(v) like any other edge; since
       in(v) never shrinks they are permanent lower bounds. *)
    List.iter
      (fun (v, d) -> if v >= 0 && v < n then if push v d then dirty.(v) <- true)
      entries;
    let pending = ref true in
    while !pending do
      pending := false;
      Array.iter
        (fun v ->
          if dirty.(v) then begin
            dirty.(v) <- false;
            incr iterations;
            match in_.(v) with
            | None -> ()
            | Some d ->
              incr visits;
              let o = transfer v d in
              let out_changed =
                match out.(v) with None -> true | Some old -> not (D.equal old o)
              in
              if out_changed then begin
                out.(v) <- Some o;
                List.iter (fun s -> if push s o then dirty.(s) <- true) succs.(v)
              end
          end)
        by_order;
      pending := Array.exists Fun.id dirty
    done;
    { in_; out; stats = { iterations = !iterations; visits = !visits; widenings = !widenings } }
end
