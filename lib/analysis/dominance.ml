type t = {
  entry : int;
  idom : int array;  (* idom.(n) = immediate dominator; entry maps to itself; -1 unreachable *)
}

(* Iterative depth-first postorder with an explicit stack: graphs here
   are whole programs (tens of thousands of blocks), far beyond what the
   OCaml stack tolerates recursively. *)
let postorder ~n ~entry ~succs =
  let order = ref [] in
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  if entry >= 0 && entry < n then begin
    let stack = Stack.create () in
    Stack.push (entry, succs entry) stack;
    state.(entry) <- 1;
    while not (Stack.is_empty stack) do
      let node, pending = Stack.pop stack in
      match pending with
      | [] ->
        state.(node) <- 2;
        order := node :: !order
      | s :: rest ->
        Stack.push (node, rest) stack;
        if s >= 0 && s < n && state.(s) = 0 then begin
          state.(s) <- 1;
          Stack.push (s, succs s) stack
        end
    done
  end;
  !order (* head = last finished = reverse postorder start is entry *)

let compute ~n ~entry ~succs =
  let idom = Array.make n (-1) in
  if entry >= 0 && entry < n then begin
    (* Reverse postorder (entry first) and postorder numbering. *)
    let rpo = Array.of_list (postorder ~n ~entry ~succs) in
    let po_num = Array.make n (-1) in
    let m = Array.length rpo in
    Array.iteri (fun i node -> po_num.(node) <- m - 1 - i) rpo;
    (* Predecessor lists restricted to reachable nodes. *)
    let preds = Array.make n [] in
    Array.iter
      (fun u ->
        List.iter
          (fun v -> if v >= 0 && v < n && po_num.(v) >= 0 then preds.(v) <- u :: preds.(v))
          (succs u))
      rpo;
    let intersect b1 b2 =
      let f1 = ref b1 and f2 = ref b2 in
      while !f1 <> !f2 do
        while po_num.(!f1) < po_num.(!f2) do
          f1 := idom.(!f1)
        done;
        while po_num.(!f2) < po_num.(!f1) do
          f2 := idom.(!f2)
        done
      done;
      !f1
    in
    idom.(entry) <- entry;
    let changed = ref true in
    while !changed do
      changed := false;
      (* Skip the entry (rpo.(0)). *)
      for i = 1 to m - 1 do
        let b = rpo.(i) in
        let new_idom = ref (-1) in
        List.iter
          (fun p ->
            if idom.(p) >= 0 then
              new_idom := if !new_idom < 0 then p else intersect p !new_idom)
          preds.(b);
        if !new_idom >= 0 && idom.(b) <> !new_idom then begin
          idom.(b) <- !new_idom;
          changed := true
        end
      done
    done
  end;
  { entry; idom }

let idom t n =
  if n < 0 || n >= Array.length t.idom then None
  else if t.idom.(n) < 0 || n = t.entry then None
  else Some t.idom.(n)

let is_reachable t n = n >= 0 && n < Array.length t.idom && t.idom.(n) >= 0

let dominates t ~dom n =
  if not (is_reachable t n && is_reachable t dom) then false
  else begin
    let rec walk x = x = dom || (x <> t.entry && walk t.idom.(x)) in
    walk n
  end

let of_blocks ~entry blocks =
  let n = Array.length blocks in
  compute ~n ~entry ~succs:(fun i -> Cfg.flow_successors blocks.(i))

let post_of_blocks blocks =
  let n = Array.length blocks in
  let preds = Cfg.predecessors blocks in
  let exits = Cfg.exits blocks in
  (* Reversed graph: successors of a block are its flow predecessors;
     the virtual exit node [n] fans out to every Return/Halt sink. *)
  let succs i = if i = n then exits else preds.(i) in
  compute ~n:(n + 1) ~entry:n ~succs
