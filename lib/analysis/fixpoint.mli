(** A reusable worklist solver for forward or backward dataflow over a
    join-semilattice (layer 4 substrate; DESIGN.md "Abstract cache
    analysis").

    The solver is direction-agnostic: it propagates facts from
    [entries] along the edges described by [preds].  A forward pass
    hands it the real predecessor lists; a backward pass hands it the
    transposed graph (successor lists) and reads [in_]/[out] with the
    roles swapped.

    Nodes never reached from an entry keep [None] — the implicit bottom
    element — so callers can distinguish "unreachable" from any real
    lattice value without the domain having to model ⊥.

    Termination: with a finite-height lattice and monotone [transfer],
    the chaotic iteration converges on its own.  For infinite-height
    (or merely tall) domains, [widen] is applied in place of [join]
    once a node's input has been refreshed more than [widen_after]
    times; the classical requirement is that [widen a b ⊒ a ⊔ b] and
    that widening chains stabilise. *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound; must be associative, commutative, idempotent. *)
end

type stats = {
  iterations : int;  (** worklist pops *)
  visits : int;  (** transfer-function applications *)
  widenings : int;  (** joins replaced by the widening operator *)
}

module Make (D : DOMAIN) : sig
  type result = {
    in_ : D.t option array;
        (** per node: join of predecessor outputs (and the entry fact);
            [None] = unreachable *)
    out : D.t option array;  (** per node: [transfer] of [in_] *)
    stats : stats;
  }

  val solve :
    ?widen:(D.t -> D.t -> D.t) ->
    ?widen_after:int ->
    n:int ->
    entries:(int * D.t) list ->
    preds:int list array ->
    transfer:(int -> D.t -> D.t) ->
    unit ->
    result
  (** Solve the flow system

      {[ in(v)  = entry(v) ⊔ ⨆ { out(p) | p ∈ preds(v) }
         out(v) = transfer v in(v) ]}

      by chaotic iteration from the [entries].  Deterministic: the
      worklist is FIFO and seeded in the given entry order, so equal
      inputs produce identical iteration counts and results.
      [widen_after] defaults to never widening; when [widen] is given
      it replaces the join of a node's old and new input starting with
      that node's [widen_after]-th refresh.  Out-of-range predecessor
      indices are ignored (consistent with {!Cfg.predecessors}). *)
end
