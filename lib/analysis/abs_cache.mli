(** Abstract interpretation of the I-cache (layer 4): must, may and
    persistence domains over the {e closed} control-flow graph, solved
    with {!Fixpoint}.

    {2 The closed graph}

    {!Cfg.flow_successors} deliberately leaves [Return] and [Halt] as
    sinks; concretely, execution resumes at some call's [return_to] (or
    at the entry/dispatcher block when the stack is empty or the
    program halts).  Sound residency proofs must cover those
    resumptions, so this pass adds context-insensitive closure edges:
    every [Return] block gains an edge to {e every} [return_to] site in
    the program and to the entry block, and every [Halt] block gains an
    edge to the entry block.  Over-approximating the path set keeps
    every domain sound — must facts only shrink, may facts only grow.

    {2 The domains}

    - {b must} (policy-independent): lines guaranteed resident under
      {e every} demand-fetch replacement policy.  Relies only on two
      structural facts of {!Ripple_cache.Cache}: hits never evict, and
      fills take a cold way before consulting the policy victim — so a
      set whose reachable working set fits its associativity
      ({e persistent} set) never evicts at all.
    - {b must-LRU} (age vectors): the classical per-set age-bound
      lattice.  A line with age bound [< ways] is guaranteed resident
      under LRU specifically.
    - {b may}: lines possibly resident on {e some} path; a line absent
      from the may set is a guaranteed (cold) miss.

    All facts assume a cold cache at the entry block and {e no
    prefetcher} — a prefetch fill can evict a must line and install a
    may-absent one.  Must facts also hold mid-trace (residency proofs
    only get easier on a warm cache); always-miss and first-miss-only
    facts are cold-start, demand-fetch claims.

    Hints are part of the analyzed program: [Invalidate l] removes [l]
    from every domain; [Demote l] leaves residency alone (it only
    reorders the victim preference; in a persistent set the victim is
    never consulted) but drops the LRU age bound of [l] to [ways - 1].

    {2 Termination}

    Every domain is a finite join-semilattice — bit vectors under
    intersection/union, age vectors under pointwise max capped at
    [ways] — and every transfer function is monotone, so the
    {!Fixpoint} iteration converges without widening.  The auxiliary
    hint passes (guaranteed re-reference, guaranteed conflicts) are
    Kleene iterations over finite lattices with the fixpoint side
    (least resp. greatest) chosen to match their inductive
    resp. coinductive claim. *)

module Addr := Ripple_isa.Addr
module Basic_block := Ripple_isa.Basic_block
module Geometry := Ripple_cache.Geometry

type t

val closed_successors : entry:int -> Basic_block.t array -> int list array
(** The flow graph plus the return/halt closure edges described above;
    deduplicated, out-of-range targets dropped. *)

val analyze : geometry:Geometry.t -> entry:int -> Basic_block.t array -> t
(** Run all three domains to their fixpoint.  Requires a structurally
    valid program (run {!Cfg.check} first). *)

(** {1 Per-site facts} *)

type site_fact = {
  index : int;  (** position in the block's {!Basic_block.lines} order *)
  line : Addr.line;
  must_hit : bool;  (** guaranteed hit under every demand-fetch policy *)
  must_hit_lru : bool;  (** guaranteed hit under LRU (implied by [must_hit]) *)
  always_miss : bool;  (** guaranteed miss: first touch on every path *)
}

val facts : t -> site_fact array array
(** Indexed by block id; one entry per line access in execution order.
    Blocks unreachable in the closed graph get an empty array (no
    claim is made about them). *)

val reachable : t -> bool array
(** Closed-graph reachability from the entry. *)

val persistent : t -> set:int -> bool
(** The set's reachable working set fits its associativity: no fill in
    it ever consults the replacement policy, so nothing is ever
    evicted from it. *)

val first_miss_only : t -> Addr.line -> bool
(** The line lives in a persistent set and no reachable block carries
    an [Invalidate] hint on it: it misses at most once per run. *)

val solver_stats : t -> Fixpoint.stats
(** Aggregated over the product-domain solve. *)

(** {1 Hint proofs} *)

type verdict =
  | Proved_noop
      (** the line is may-absent at the hint (or the hint is
          unreachable): the hint can never change cache contents *)
  | Proved_dead
      (** no closed-graph path re-references the line after the hint
          without crossing another invalidation of it first: the
          hinted line itself can never miss again, and the freed way
          is refilled without evicting anyone (fills prefer cold and
          hinted ways) *)
  | Proved_persistent
      (** a demotion in a persistent set: the victim preference it
          expresses is never consulted *)
  | Proved_pressure
      (** every path to a re-reference first touches at least [ways]
          distinct same-set lines: under LRU the line would have been
          evicted anyway (LRU-grade, unlike the other proofs) *)
  | Proved_harmful
      (** the line is must-resident under every policy at the hint,
          and on every path the next same-set event is a re-reference
          of the line itself: the hint converts a guaranteed hit into
          a guaranteed miss under every demand-fetch policy *)
  | Unproved  (** none of the above could be established *)

val verdict_name : verdict -> string

val proved_safe : verdict -> bool
(** [Proved_dead], [Proved_persistent] or [Proved_pressure] — the
    verdicts that positively establish the hint cannot cost a miss.
    [Proved_noop] is deliberately excluded: a no-op is harmless but
    also useless, so safety filters drop it. *)

val prove : t -> block:int -> index:int -> verdict
(** Verdict for the hint at position [index] of [block]'s hint array.
    Raises [Invalid_argument] if there is no such hint. *)

(** {1 Static bounds} *)

type bounds = {
  instructions : int;
      (** [Σ exec_counts(b) · n_instrs(b)] — original (non-hint)
          instructions, the same denominator the simulator's MPKI
          uses *)
  lower_misses : int;
  upper_misses : int;
  mpki_lower : float;
  mpki_upper : float;
}

val bounds : t -> exec_counts:int array -> bounds option
(** Static demand-miss bounds for any execution with the given
    per-block execution counts, under every demand-fetch policy from a
    cold cache with no prefetcher: every site that is not a must hit
    counts toward the upper bound (collapsed to one miss per
    first-miss-only line), every always-miss site and every distinct
    executed line's cold miss counts toward the lower bound.  [None]
    when [exec_counts] does not cover the block array or no
    instructions execute. *)

type min_geometry = {
  coverage : float;  (** instruction-weight fraction the estimate covers *)
  dominant_blocks : int;
  dominant_lines : int;
  min_ways : int;
      (** smallest associativity (at the analyzed set count) for which
          every dominant line's set is persistent — the dominant
          working set then misses at most once per line *)
  min_size_bytes : int;
}

val min_geometry : t -> exec_counts:int array -> min_geometry option
(** Dominant-block minimal-geometry estimate: rank blocks by executed
    instruction weight, keep the smallest prefix covering 90% of it,
    and size the cache so that prefix's lines are fully persistent. *)

(** {1 Summary} *)

type summary = {
  blocks : int;  (** closed-reachable blocks *)
  sites : int;
  must_hit_sites : int;
  must_hit_lru_sites : int;
  always_miss_sites : int;
  persistent_sets : int;
  first_miss_lines : int;
  solver : Fixpoint.stats;
  bounds : bounds option;
  min_geometry : min_geometry option;
}

val summarize : ?exec_counts:int array -> t -> summary

val summary_to_json : summary -> Ripple_util.Json.t
(** Deterministic field order; [bounds]/[min_geometry] are [null] when
    absent. *)
