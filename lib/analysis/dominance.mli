(** Dominator and post-dominator trees over the block flow graph.

    Implementation: the Cooper–Harvey–Kennedy iterative algorithm —
    reverse-postorder sweeps intersecting predecessor dominators until
    fixpoint ("A Simple, Fast Dominance Algorithm").  On the reducible,
    mostly-structured CFGs the generator emits it converges in two or
    three sweeps, and the tree doubles as the redundancy witness for
    {!Invalidation_check}: a hint is only ever reported redundant
    against an invalidation that {e dominates} it.

    The module is graph-agnostic: callers hand in a successor function
    over dense int nodes.  {!of_blocks} and {!post_of_blocks} wire the
    two instances the linter needs (forward dominance from the program
    entry; post-dominance as dominance of the reversed graph rooted at
    a virtual exit over all [Return]/[Halt] blocks). *)

module Basic_block := Ripple_isa.Basic_block

type t

val compute : n:int -> entry:int -> succs:(int -> int list) -> t
(** Dominator tree of the graph [{0..n-1}] with edges [succs].
    Out-of-range successors are ignored; nodes unreachable from [entry]
    have no dominators ({!idom} is [None], {!dominates} is [false]). *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry and unreachable nodes. *)

val is_reachable : t -> int -> bool

val dominates : t -> dom:int -> int -> bool
(** Reflexive: [dominates t ~dom:x x] holds for reachable [x]. *)

val of_blocks : entry:int -> Basic_block.t array -> t
(** Forward dominance under {!Cfg.flow_successors}. *)

val post_of_blocks : Basic_block.t array -> t
(** Post-dominance: dominance of the edge-reversed flow graph from a
    virtual exit node (index [Array.length blocks]) with an edge to
    every [Return]/[Halt] block.  [dominates ~dom:x y] then reads "every
    path from [y] to program exit passes through [x]"; the virtual exit
    itself is a valid query node. *)
