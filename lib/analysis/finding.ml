module Addr = Ripple_isa.Addr
module Json = Ripple_util.Json

type severity = Info | Warning | Error

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type code =
  | Entry_out_of_range
  | Id_mismatch
  | Nonpositive_extent
  | Dangling_successor
  | Dangling_return
  | Region_violation
  | Overlapping_blocks
  | Misaligned_block
  | Unreachable_block
  | Hint_outside_footprint
  | Harmful_invalidation
  | Redundant_invalidation
  | Classifier_disagreement

let code_name = function
  | Entry_out_of_range -> "entry_out_of_range"
  | Id_mismatch -> "id_mismatch"
  | Nonpositive_extent -> "nonpositive_extent"
  | Dangling_successor -> "dangling_successor"
  | Dangling_return -> "dangling_return"
  | Region_violation -> "region_violation"
  | Overlapping_blocks -> "overlapping_blocks"
  | Misaligned_block -> "misaligned_block"
  | Unreachable_block -> "unreachable_block"
  | Hint_outside_footprint -> "hint_outside_footprint"
  | Harmful_invalidation -> "harmful_invalidation"
  | Redundant_invalidation -> "redundant_invalidation"
  | Classifier_disagreement -> "classifier_disagreement"

type t = {
  severity : severity;
  code : code;
  block : int option;
  line : Addr.line option;
  message : string;
}

let v severity code ?block ?line message = { severity; code; block; line; message }

let max_severity = function
  | [] -> None
  | fs ->
    Some
      (List.fold_left
         (fun acc f -> if severity_rank f.severity > severity_rank acc then f.severity else acc)
         Info fs)

let to_json f =
  Json.Obj
    [
      ("severity", Json.String (severity_name f.severity));
      ("code", Json.String (code_name f.code));
      ("block", match f.block with Some b -> Json.Int b | None -> Json.Null);
      ("line", match f.line with Some l -> Json.Int l | None -> Json.Null);
      ("message", Json.String f.message);
    ]

let pp fmt f =
  let pp_block fmt = function
    | Some b -> Format.fprintf fmt " bb%d" b
    | None -> ()
  in
  let pp_line fmt = function
    | Some l -> Format.fprintf fmt " %a" Addr.pp_line l
    | None -> ()
  in
  Format.fprintf fmt "@[%s[%s]%a%a: %s@]" (severity_name f.severity) (code_name f.code)
    pp_block f.block pp_line f.line f.message
