(** Lint findings: what the static verifier reports.

    A finding pins one defect (or observation) to a block and/or cache
    line, carries a machine-stable [code], and a severity drawn from a
    three-level taxonomy:

    - [Error] — the program or its instrumentation is broken: simulating
      it would silently corrupt results (dangling control flow,
      overlapping layout, an invalidation that converts hits to misses).
    - [Warning] — suspicious but not result-corrupting: redundant
      invalidations, hints that are pure overhead.
    - [Info] — observations surfaced for context only, e.g. blocks no
      static edge reaches (the CFG generator legitimately emits such
      orphans).

    Findings are plain data; rendering (text and JSON) lives here so the
    CLI and the pipeline verify gate agree byte-for-byte. *)

module Addr := Ripple_isa.Addr

type severity = Info | Warning | Error

val severity_name : severity -> string
val severity_rank : severity -> int
(** [Info] < [Warning] < [Error]; used for exit codes and sorting. *)

(** Machine-stable defect codes.  The constructor name doubles as the
    JSON [code] field (lower-snake-case via {!code_name}). *)
type code =
  | Entry_out_of_range
  | Id_mismatch
  | Nonpositive_extent  (** block with [bytes <= 0] or [n_instrs <= 0] *)
  | Dangling_successor
  | Dangling_return  (** call/indirect-call [return_to] out of range *)
  | Region_violation  (** block laid outside its privilege's text region *)
  | Overlapping_blocks
  | Misaligned_block  (** alignment requested but address not aligned *)
  | Unreachable_block
  | Hint_outside_footprint  (** hint operand line never part of the text *)
  | Harmful_invalidation
  | Redundant_invalidation
  | Classifier_disagreement
      (** the path-search classifier and the abstract-interpretation
          proofs contradict each other on one hint — one of them is
          unsound, so the result cannot be trusted *)

val code_name : code -> string

type t = {
  severity : severity;
  code : code;
  block : int option;  (** block id the finding anchors to *)
  line : Addr.line option;  (** cache line involved, for hint findings *)
  message : string;
}

val v : severity -> code -> ?block:int -> ?line:Addr.line -> string -> t

val max_severity : t list -> severity option
(** [None] on an empty list. *)

val to_json : t -> Ripple_util.Json.t
val pp : Format.formatter -> t -> unit
