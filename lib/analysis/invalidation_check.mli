(** Classification of injected invalidation/demotion hints (layer 3).

    A hint is judged by what can happen to its victim line on the
    static flow graph {e after} the hint executes (hints sit at the end
    of their block):

    - {b Redundant} — the same line is already hint-dead on every path
      reaching this hint, with no intervening reference, and an earlier
      hint that {e dominates} this one witnesses it (including the
      degenerate case of a duplicate hint in the same block).  The hint
      can only ever find the line absent: pure overhead.
    - {b Harmful} — some path re-references the line while fewer than
      [ways] distinct other lines of the same cache set have been
      touched since the hint.  No replacement policy — the ideal one
      included — would have evicted the line that early, so the hint
      converts a likely hit into a miss ([reuse_block] and the conflict
      count witness the path).
    - {b Safe} — neither of the above, split by reason: [Safe_dead]
      when no path re-references the line at all (accounting for
      re-invalidations in between), [Safe_pressure] when every path to
      a re-reference first touches at least [ways] distinct same-set
      lines — by then the victim is past its ideal eviction point and
      would have been evicted anyway.

    The conflict count along a path is explored lowest-first and
    memoised per block, so the search visits each block at most [ways]
    times; paths are pruned once they saturate the set's associativity
    or cross another hint on the same line.

    Return edges are {e not} modelled (see {!Cfg}): reuse that flows
    through a function return is governed by the profile's conditional
    probability, which is exactly the evidence the injector already
    demanded.  What this pass catches statically is the blunder the
    profile cannot excuse — invalidating a line the cue block's own
    forward slice is still about to execute. *)

module Addr := Ripple_isa.Addr
module Basic_block := Ripple_isa.Basic_block
module Geometry := Ripple_cache.Geometry

type site = {
  block : int;  (** block carrying the hint *)
  index : int;  (** position in the block's hint array *)
  line : Addr.line;  (** victim line *)
  demote : bool;  (** [Demote] rather than [Invalidate] *)
}

type classification =
  | Safe_dead
  | Safe_pressure
  | Harmful of { reuse_block : int; conflicts : int }
  | Redundant of { earlier : int }

val classification_name : classification -> string
(** ["safe_dead"], ["safe_pressure"], ["harmful"], ["redundant"]. *)

val classify : geometry:Geometry.t -> entry:int -> Basic_block.t array -> (site * classification) list
(** All hint sites in block order (hint order within a block), each with
    its classification.  [geometry] supplies the set mapping and
    associativity of the target I-cache.  Requires a structurally valid
    program (run {!Cfg.check} first). *)

val classify_proved :
  geometry:Geometry.t ->
  entry:int ->
  Basic_block.t array ->
  (site * classification * Abs_cache.verdict) list
(** {!classify}, with each site additionally judged by the
    abstract-interpretation proofs of {!Abs_cache} (one shared
    {!Abs_cache.analyze} per call).  The two classifiers reason over
    different path sets — this one over the bare flow graph, the
    abstract one over the return-closed graph — so the abstract verdict
    can be strictly more conservative; genuinely contradictory pairs
    are the {!Lint} cross-check's business. *)

val disagreement : classification -> Abs_cache.verdict -> bool
(** The cross-check tripwire.  Two pairs count as disagreement:
    [Proved_dead]/[Proved_pressure] against a [Harmful] path witness —
    impossible by construction (the proofs quantify over a {e
    superset} of the paths the search explores), so firing means one
    side has a bug — and [Proved_harmful] against
    [Safe_dead]/[Safe_pressure] on an invalidation, which means the
    path search blessed a hint that provably costs a miss on a real
    execution path (reuse flowing through a return edge it chose not
    to model).  [Proved_persistent] and [Proved_noop] never disagree:
    they reason about residency and victim consultation, which the
    path search does not model at all. *)
