(** Synthetic control-flow graph generation.

    Turns an {!App_model.t} into a concrete {!Ripple_isa.Program.t} plus
    the per-site dynamic behaviour (branch biases, indirect-target
    distributions) the {!Executor} samples from.  Generation is
    deterministic in [model.seed].

    Shape: a dispatcher loop (the server's request loop) indirect-calls
    one of the hot handler functions; functions form an acyclic call
    graph layered into [call_levels] bands (so call depth is bounded and
    recursion-free); kernel functions live in a separate address region
    and are entered through syscall-like call sites. *)

module Program := Ripple_isa.Program

type t = {
  model : App_model.t;
  program : Program.t;
  dispatcher : int;  (** block id of the request loop *)
  handlers : int array;  (** entry block ids of the dispatcher's callees *)
  bias : float array;
      (** per block id: P(taken) of its conditional terminator; NaN for
          non-conditional blocks *)
  weights : float array array;
      (** per block id: target distribution of its indirect terminator,
          aligned with the terminator's target array; [[||]] elsewhere *)
}

val generate : App_model.t -> t

val function_entries : t -> int array
(** Entry block ids of every generated function (diagnostics). *)
