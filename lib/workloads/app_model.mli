(** Parameters of a synthetic data-center application.

    The paper's nine applications cannot run here (JVM/HHVM servers,
    proprietary load generators, Intel PT); instead each is modelled by a
    parameter vector that reproduces the properties its I-cache behaviour
    depends on — see DESIGN.md "Substitutions".  The properties that
    matter, and the fields that control them:

    - {e multi-megabyte instruction footprint}: [n_functions],
      [blocks_per_function], [block_bytes_mean];
    - {e skewed, phase-varying reuse} (§II-D's "unique reuse distance
      behaviour"): [zipf_s], [phase_len_instrs];
    - {e hard vs. easy to prefetch lines} (§II-C): [branch_entropy],
      [indirect_call_fraction], [indirect_jump_fraction],
      [polymorphic_fraction];
    - {e kernel code} (§IV: 15 % of HHVM misses): [kernel_fraction],
      [kernel_call_fraction];
    - {e JIT code defeating link-time injection} (§IV coverage):
      [jit_fraction];
    - {e verilator's generated straight-line code}:
      [sequential_dispatch] with near-zero [branch_entropy]. *)

type t = {
  name : string;
  seed : int;  (** CFG-generation seed; the program is a pure function of it *)
  n_functions : int;
  hot_functions : int;  (** handlers reachable from the dispatcher *)
  blocks_per_function : int;  (** mean for library functions; geometric *)
  handler_blocks : int;
      (** mean size of the dispatcher-level handler functions: a request's
          own code path, sized so one request overflows the 32 KiB L1I the
          way the paper's deep software stacks do *)
  block_bytes_mean : int;
  cond_fraction : float;  (** fraction of block terminators that branch *)
  call_fraction : float;  (** call-site density in handler bodies *)
  lib_call_fraction : float;  (** call-site density in library functions *)
  indirect_call_fraction : float;
  indirect_jump_fraction : float;
  loop_fraction : float;  (** fraction of conditionals that are back edges *)
  loop_iters_mean : int;
  branch_entropy : float;
      (** 0 = all branches near-deterministic, 1 = all coin flips *)
  polymorphic_fraction : float;
      (** fraction of indirect sites with a flat target distribution *)
  zipf_s : float;  (** handler-popularity skew; ~0 = uniform *)
  callee_zipf_s : float;
      (** skew of call-site target choice within a band: lower = more
          distinct callees per request = larger per-request footprint *)
  sequential_dispatch : bool;
      (** round-robin over handlers instead of Zipf sampling (verilator's
          eval loop sweeping generated code) *)
  kernel_fraction : float;  (** fraction of functions that are kernel code *)
  kernel_call_fraction : float;  (** P(a call site targets the kernel) *)
  jit_fraction : float;  (** fraction of user functions that are JIT code *)
  phase_len_instrs : int;  (** handler-popularity reshuffle period *)
  call_levels : int;  (** call-graph depth (acyclic by construction) *)
}

val default : t
(** A mid-size template the nine app models specialise. *)

val pp : Format.formatter -> t -> unit

val approx_footprint_bytes : t -> int
(** Expected static code size implied by the sizing fields. *)
