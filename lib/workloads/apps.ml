let base = App_model.default

(* NoSQL database: large request-handling surface, moderately predictable
   branch behaviour, strongly skewed hot path. *)
let cassandra =
  {
    base with
    App_model.name = "cassandra";
    seed = 11;
    n_functions = 550;
    hot_functions = 110;
    handler_blocks = 230;
    branch_entropy = 0.40;
    kernel_fraction = 0.05;
  }

(* HHVM PHP applications: biggest instruction footprints, ~half the hot
   code JIT-compiled (defeating link-time injection), and a substantial
   kernel component (§IV: 15 % of their I-cache misses are kernel). *)
let drupal =
  {
    base with
    App_model.name = "drupal";
    seed = 22;
    n_functions = 700;
    hot_functions = 140;
    handler_blocks = 220;
    block_bytes_mean = 34;
    branch_entropy = 0.50;
    zipf_s = 1.15;
    kernel_fraction = 0.12;
    kernel_call_fraction = 0.03;
    jit_fraction = 0.45;
  }

(* Finagle microservices: deep RPC stacks, high call density. *)
let finagle_chirper =
  {
    base with
    App_model.name = "finagle-chirper";
    seed = 33;
    n_functions = 480;
    hot_functions = 100;
    handler_blocks = 200;
    call_fraction = 0.10;
    branch_entropy = 0.45;
    zipf_s = 1.30;
  }

let finagle_http =
  {
    base with
    App_model.name = "finagle-http";
    seed = 44;
    n_functions = 450;
    hot_functions = 90;
    handler_blocks = 200;
    call_fraction = 0.10;
    branch_entropy = 0.45;
    zipf_s = 1.35;
  }

(* Stream processor: tighter hot loop, smaller effective working set —
   the smallest ideal-cache headroom of the nine (Fig. 1's 11 %). *)
let kafka =
  {
    base with
    App_model.name = "kafka";
    seed = 55;
    n_functions = 400;
    hot_functions = 70;
    handler_blocks = 150;
    blocks_per_function = 16;
    block_bytes_mean = 40;
    branch_entropy = 0.30;
    zipf_s = 1.45;
    kernel_fraction = 0.08;
    loop_fraction = 0.22;
    loop_iters_mean = 10;
  }

let mediawiki =
  {
    drupal with
    App_model.name = "mediawiki";
    seed = 66;
    n_functions = 750;
    hot_functions = 150;
    handler_blocks = 230;
    zipf_s = 1.10;
    jit_fraction = 0.50;
  }

(* Servlet container: mid-size Java server. *)
let tomcat =
  {
    base with
    App_model.name = "tomcat";
    seed = 77;
    n_functions = 520;
    hot_functions = 105;
    handler_blocks = 220;
    branch_entropy = 0.40;
    kernel_fraction = 0.06;
  }

(* Generated hardware-simulation code: the eval loop sweeps a large body
   of nearly-branchless code cyclically — LRU's worst case, near-perfect
   predictability for profiles (Ripple's 98.7 % coverage / 99.9 %
   accuracy app). *)
let verilator =
  {
    base with
    App_model.name = "verilator";
    seed = 88;
    n_functions = 300;
    hot_functions = 110;
    handler_blocks = 190;
    blocks_per_function = 20;
    block_bytes_mean = 48;
    cond_fraction = 0.15;
    call_fraction = 0.04;
    lib_call_fraction = 0.02;
    indirect_call_fraction = 0.004;
    indirect_jump_fraction = 0.004;
    loop_fraction = 0.35;
    loop_iters_mean = 4;
    branch_entropy = 0.05;
    polymorphic_fraction = 0.05;
    sequential_dispatch = true;
    zipf_s = 0.10;
    kernel_fraction = 0.02;
    kernel_call_fraction = 0.002;
    phase_len_instrs = 100_000_000;
  }

let wordpress =
  {
    drupal with
    App_model.name = "wordpress";
    seed = 99;
    n_functions = 800;
    hot_functions = 160;
    handler_blocks = 220;
    zipf_s = 1.12;
    jit_fraction = 0.50;
  }

let all =
  [
    cassandra;
    drupal;
    finagle_chirper;
    finagle_http;
    kafka;
    mediawiki;
    tomcat;
    verilator;
    wordpress;
  ]

let by_name name = List.find_opt (fun m -> m.App_model.name = name) all
