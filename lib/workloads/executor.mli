(** Stochastic trace executor: runs a generated CFG and emits the dynamic
    basic-block sequence (what Intel PT would capture and the decoder
    reconstruct).

    Execution is driven by an {!input}: the load-generator configuration
    of §IV ("different input parameters offered to the client's load
    generator").  Inputs perturb which handlers are hot (rotation), how
    skewed the request mix is, the phase schedule and the stochastic
    seed, while the program itself is fixed — so a profile collected
    under one input can be evaluated under another (Fig. 13). *)

type input = {
  label : string;
  exec_seed : int;
  handler_rotation : int;  (** shifts the popularity ranking over handlers *)
  zipf_delta : float;  (** added to the model's request-mix skew *)
  phase_shift : int;  (** offsets the phase schedule, in instructions *)
}

val input : ?rotation:int -> ?zipf_delta:float -> ?phase_shift:int -> label:string -> seed:int -> unit -> input

val train : input
(** The profiling input used for the main experiments ("#p"). *)

val eval_inputs : input array
(** The four evaluation inputs "#0".."#3" of Fig. 13; "#0" is also the
    evaluation input of every main experiment. *)

val run : Cfg_gen.t -> input:input -> n_instrs:int -> int array
(** Executes until at least [n_instrs] original (pre-injection)
    instructions have retired, returning the block trace.  Deterministic
    in [(workload, input)]. *)

val run_stream :
  ?backing:Ripple_util.Int_stream.backing -> Cfg_gen.t -> input:input -> n_instrs:int ->
  Ripple_util.Int_stream.t
(** {!run} writing straight into an {!Ripple_util.Int_stream} builder:
    with [~backing:(Spill _)] the block trace streams through a
    fixed-size buffer to an mmap-backed spill file, so a paper-scale
    (100 M-instruction) trace never materializes in the heap.  Entry
    [i] equals [(run w ~input ~n_instrs).(i)]. *)
