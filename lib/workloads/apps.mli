(** The nine data-center application models of the paper's evaluation.

    Three HHVM web applications (drupal, mediawiki, wordpress: JIT-heavy,
    sizeable kernel component), three DaCapo server applications
    (cassandra, kafka, tomcat), two Renaissance/Finagle services
    (finagle-chirper, finagle-http) and verilator (generated,
    nearly-straight-line hardware-simulation code swept cyclically).
    Parameter rationales are in each definition; DESIGN.md explains the
    substitution of synthetic models for the real binaries. *)

val cassandra : App_model.t
val drupal : App_model.t
val finagle_chirper : App_model.t
val finagle_http : App_model.t
val kafka : App_model.t
val mediawiki : App_model.t
val tomcat : App_model.t
val verilator : App_model.t
val wordpress : App_model.t

val all : App_model.t list
(** All nine, in the paper's (alphabetical) figure order. *)

val by_name : string -> App_model.t option
