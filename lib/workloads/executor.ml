module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Prng = Ripple_util.Prng

type input = {
  label : string;
  exec_seed : int;
  handler_rotation : int;
  zipf_delta : float;
  phase_shift : int;
}

let input ?(rotation = 0) ?(zipf_delta = 0.0) ?(phase_shift = 0) ~label ~seed () =
  { label; exec_seed = seed; handler_rotation = rotation; zipf_delta; phase_shift }

let train = input ~label:"#p" ~seed:4242 ()

let eval_inputs =
  [|
    input ~label:"#0" ~seed:1001 ();
    input ~label:"#1" ~seed:2002 ~rotation:5 ~zipf_delta:0.08 ~phase_shift:120_000 ();
    input ~label:"#2" ~seed:3003 ~rotation:11 ~zipf_delta:(-0.06) ~phase_shift:250_000 ();
    input ~label:"#3" ~seed:4004 ~rotation:17 ~zipf_delta:0.15 ~phase_shift:60_000 ();
  |]

let phase_stride = 3
let max_stack = 512

let exec (w : Cfg_gen.t) ~input ~n_instrs ~emit =
  let model = w.Cfg_gen.model in
  let program = w.Cfg_gen.program in
  let rng = Prng.create ~seed:(model.App_model.seed lxor (input.exec_seed * 0x1F3F)) in
  let n_handlers = Array.length w.Cfg_gen.handlers in
  (* The popularity permutation is a program property; inputs and phases
     rotate through it so hot sets overlap but differ. *)
  let perm = Array.init n_handlers (fun i -> i) in
  let perm_rng = Prng.create ~seed:model.App_model.seed in
  Prng.shuffle perm_rng perm;
  let phase_len = max 10_000 model.App_model.phase_len_instrs in
  let zipf_s = Float.max 0.05 (model.App_model.zipf_s +. input.zipf_delta) in
  let round_robin = ref 0 in
  let pick_handler ~instrs =
    let rank =
      if model.App_model.sequential_dispatch then begin
        let r = !round_robin in
        round_robin := (r + 1) mod n_handlers;
        r
      end
      else Prng.zipf rng ~n:n_handlers ~s:zipf_s
    in
    let phase = (instrs + input.phase_shift) / phase_len in
    let slot = (rank + input.handler_rotation + (phase * phase_stride)) mod n_handlers in
    w.Cfg_gen.handlers.(perm.(slot))
  in
  let pick_weighted targets weights =
    let u = Prng.float rng 1.0 in
    let n = Array.length targets in
    let rec go i acc =
      if i = n - 1 then targets.(i)
      else begin
        let acc = acc +. weights.(i) in
        if u < acc then targets.(i) else go (i + 1) acc
      end
    in
    go 0 0.0
  in
  let stack = Array.make max_stack 0 in
  let sp = ref 0 in
  let push x = if !sp < max_stack then begin stack.(!sp) <- x; incr sp end in
  let pop () = if !sp = 0 then None else begin decr sp; Some stack.(!sp) end in
  let instrs = ref 0 in
  let current = ref (Program.entry program) in
  while !instrs < n_instrs do
    let id = !current in
    let b = Program.block program id in
    emit id;
    instrs := !instrs + b.Basic_block.n_instrs;
    let next =
      match b.Basic_block.term with
      | Basic_block.Fallthrough next | Basic_block.Jump next -> next
      | Basic_block.Cond { taken; fallthrough } ->
        if Prng.chance rng w.Cfg_gen.bias.(id) then taken else fallthrough
      | Basic_block.Call { callee; return_to } ->
        push return_to;
        callee
      | Basic_block.Indirect_call { callees; return_to } ->
        push return_to;
        if id = w.Cfg_gen.dispatcher then pick_handler ~instrs:!instrs
        else pick_weighted callees w.Cfg_gen.weights.(id)
      | Basic_block.Indirect targets -> pick_weighted targets w.Cfg_gen.weights.(id)
      | Basic_block.Return -> begin
        match pop () with Some target -> target | None -> w.Cfg_gen.dispatcher
      end
      | Basic_block.Halt -> w.Cfg_gen.dispatcher
    in
    current := next
  done

let run (w : Cfg_gen.t) ~input ~n_instrs =
  let trace = ref (Array.make 65536 0) in
  let len = ref 0 in
  let emit id =
    if !len = Array.length !trace then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !trace 0 bigger 0 !len;
      trace := bigger
    end;
    !trace.(!len) <- id;
    incr len
  in
  exec w ~input ~n_instrs ~emit;
  Array.sub !trace 0 !len

let run_stream ?backing (w : Cfg_gen.t) ~input ~n_instrs =
  let builder = Ripple_util.Int_stream.Builder.create ?backing () in
  (match exec w ~input ~n_instrs ~emit:(Ripple_util.Int_stream.Builder.add builder) with
  | () -> ()
  | exception e ->
    Ripple_util.Int_stream.Builder.abort builder;
    raise e);
  Ripple_util.Int_stream.Builder.finish builder
