module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Builder = Ripple_isa.Builder
module Prng = Ripple_util.Prng

type t = {
  model : App_model.t;
  program : Program.t;
  dispatcher : int;
  handlers : int array;
  bias : float array;
  weights : float array array;
}

(* Per-site behaviour recorded while building; flushed into dense arrays
   once block count is known. *)
type recorded = { mutable biases : (int * float) list; mutable weightses : (int * float array) list }

let record_bias r id p = r.biases <- (id, p) :: r.biases
let record_weights r id w = r.weightses <- (id, w) :: r.weightses

(* A conditional's taken-probability under the model's entropy mix:
   mostly near-deterministic branches with a minority of coin flips. *)
let draw_bias rng (model : App_model.t) =
  if Prng.chance rng model.App_model.branch_entropy then 0.25 +. Prng.float rng 0.5
  else begin
    let strong = 0.02 +. Prng.float rng 0.1 in
    if Prng.bool rng then 1.0 -. strong else strong
  end

let draw_block_bytes rng (model : App_model.t) =
  let mean = model.App_model.block_bytes_mean in
  max 8 ((mean / 2) + Prng.int rng (mean + 1))

(* Target distribution of an indirect site: flat when polymorphic,
   otherwise dominated by one hot target. *)
let draw_weights rng (model : App_model.t) n =
  assert (n > 0);
  if Prng.chance rng model.App_model.polymorphic_fraction then
    Array.init n (fun _ -> 1.0 +. Prng.float rng 0.5)
  else begin
    let w = Array.init n (fun _ -> 0.05 +. Prng.float rng 0.05) in
    w.(Prng.int rng n) <- 3.0 +. Prng.float rng 3.0;
    w
  end

let normalise w =
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

(* Build one function body; returns its entry block id.  [callees] picks
   a call target (None disables calls, e.g. bottom-level functions). *)
let build_function builder rng model r ~privilege ~jit ~callees ~call_fraction ~n_blocks =
  let open App_model in
  let k = max 1 n_blocks in
  (* Allocate ids first so forward/backward edges can be expressed. *)
  let ids =
    Array.init k (fun i ->
        Builder.block builder ~privilege ~jit ~aligned:(i = 0)
          ~bytes:(draw_block_bytes rng model) ~term:Basic_block.Return ())
  in
  (* Loops are short disjoint trailing segments ([loop_floor] fences them
     off from each other) and never wrap a call site, so per-function
     work stays linear in the block count instead of exploding through
     nested re-execution of call trees. *)
  let loop_floor = ref 0 in
  let is_call = Array.make k false in
  for i = 0 to k - 2 do
    let id = ids.(i) in
    let next = ids.(i + 1) in
    let u = Prng.float rng 1.0 in
    let cond_cut = model.cond_fraction in
    let call_cut = cond_cut +. call_fraction in
    let icall_cut = call_cut +. model.indirect_call_fraction in
    let ijmp_cut = icall_cut +. model.indirect_jump_fraction in
    if u < cond_cut then begin
      let jdx = max !loop_floor (i - 1 - Prng.int rng 2) in
      let body_has_call =
        let any = ref false in
        for b = jdx to i - 1 do
          if is_call.(b) then any := true
        done;
        !any
      in
      let back_edge =
        i > !loop_floor && (not body_has_call) && Prng.chance rng model.loop_fraction
      in
      if back_edge then begin
        let target = ids.(jdx) in
        loop_floor := i + 1;
        let iters =
          Float.of_int (max 1 model.loop_iters_mean) *. (0.5 +. Prng.float rng 1.5)
        in
        record_bias r id (iters /. (iters +. 1.0));
        Builder.set_term builder id (Basic_block.Cond { taken = target; fallthrough = next })
      end
      else begin
        (* Forward branches skip locally (if/else regions), not across
           the whole function — keeps most of a hot function's body hot. *)
        let skip = min (k - i - 1) (1 + Prng.geometric rng ~p:0.6) in
        let target = ids.(i + skip) in
        record_bias r id (draw_bias rng model);
        Builder.set_term builder id (Basic_block.Cond { taken = target; fallthrough = next })
      end
    end
    else if u < call_cut then begin
      match callees ~want:1 with
      | [| callee |] ->
        is_call.(i) <- true;
        Builder.set_term builder id (Basic_block.Call { callee; return_to = next })
      | _ -> Builder.set_term builder id (Basic_block.Fallthrough next)
    end
    else if u < icall_cut then begin
      let want = 2 + Prng.int rng 4 in
      let cs = callees ~want in
      if Array.length cs >= 2 then begin
        is_call.(i) <- true;
        record_weights r id (normalise (draw_weights rng model (Array.length cs)));
        Builder.set_term builder id (Basic_block.Indirect_call { callees = cs; return_to = next })
      end
      else Builder.set_term builder id (Basic_block.Fallthrough next)
    end
    else if u < ijmp_cut && i + 2 < k then begin
      (* A switch over forward blocks of the same function. *)
      let pool = k - i - 1 in
      let want = min pool (2 + Prng.int rng 5) in
      let targets =
        Array.init want (fun _ ->
            ids.(i + 1 + min (pool - 1) (Prng.geometric rng ~p:0.45)))
      in
      record_weights r id (normalise (draw_weights rng model want));
      Builder.set_term builder id (Basic_block.Indirect targets)
    end
    else Builder.set_term builder id (Basic_block.Fallthrough next)
  done;
  ids.(0)

let generate (model : App_model.t) =
  let open App_model in
  let rng = Prng.create ~seed:model.seed in
  let builder = Builder.create () in
  let r = { biases = []; weightses = [] } in
  let n_kernel = max 1 (Float.to_int (model.kernel_fraction *. Float.of_int model.n_functions)) in
  let n_user = model.n_functions - n_kernel in
  assert (n_user > model.hot_functions);
  (* Pre-draw per-function attributes; entries are filled as bodies are
     built, user functions first, then kernel. *)
  let user_entry = Array.make n_user (-1) in
  let kernel_entry = Array.make n_kernel (-1) in
  let jit_flags =
    Array.init n_user (fun _ -> Prng.chance rng model.jit_fraction)
  in
  (* Kernel bodies first so user call sites can reference their ids. *)
  let kernel_callees ~of_fn ~want =
    if of_fn + 1 >= n_kernel then [||]
    else begin
      let pool = n_kernel - of_fn - 1 in
      Array.init (min want pool) (fun _ -> kernel_entry.(of_fn + 1 + Prng.int rng pool))
    end
  in
  for f = n_kernel - 1 downto 0 do
    let n_blocks =
      max 2 (1 + Prng.geometric rng ~p:(1.0 /. (0.7 *. Float.of_int model.blocks_per_function)))
    in
    kernel_entry.(f) <-
      build_function builder rng model r ~privilege:Basic_block.Kernel ~jit:false
        ~callees:(fun ~want -> kernel_callees ~of_fn:f ~want)
        ~call_fraction:model.lib_call_fraction ~n_blocks
  done;
  (* User functions, deepest level first so callee entries exist.
     Handlers call into the library region (never other handlers — a
     request is one handler plus its library closure); library functions
     call strictly deeper bands, keeping the call graph acyclic and the
     per-request tree bounded. *)
  let lib_band = max 1 ((n_user - model.hot_functions) / model.call_levels) in
  let user_callees ~of_fn ~want =
    if Prng.chance rng model.kernel_call_fraction then
      [| kernel_entry.(Prng.int rng n_kernel) |]
    else begin
      let lo = if of_fn < model.hot_functions then model.hot_functions else of_fn + lib_band in
      if lo >= n_user then [||]
      else begin
        let pool = n_user - lo in
        Array.init want (fun _ ->
            user_entry.(lo + Prng.zipf rng ~n:pool ~s:model.callee_zipf_s))
      end
    end
  in
  for f = n_user - 1 downto 0 do
    (* Dispatcher-level handlers carry a request's own (large) code path;
       deeper functions are library-sized. *)
    let handler = f < model.hot_functions in
    let mean = if handler then model.handler_blocks else model.blocks_per_function in
    let n_blocks = max 2 (1 + Prng.geometric rng ~p:(1.0 /. Float.of_int mean)) in
    user_entry.(f) <-
      build_function builder rng model r ~privilege:Basic_block.User ~jit:jit_flags.(f)
        ~callees:(fun ~want -> user_callees ~of_fn:f ~want)
        ~call_fraction:
          (if handler then model.call_fraction else model.lib_call_fraction)
        ~n_blocks
  done;
  (* The dispatcher: an endless request loop indirect-calling hot
     handlers.  Which handler actually runs is the executor's choice. *)
  let handlers = Array.sub user_entry 0 model.hot_functions in
  let dispatcher =
    Builder.block builder ~aligned:true ~bytes:48 ~term:Basic_block.Halt ()
  in
  Builder.set_term builder dispatcher
    (Basic_block.Indirect_call { callees = handlers; return_to = dispatcher });
  let program = Builder.finish builder ~entry:dispatcher in
  let n = Program.n_blocks program in
  let bias = Array.make n Float.nan in
  List.iter (fun (id, p) -> bias.(id) <- p) r.biases;
  let weights = Array.make n [||] in
  List.iter (fun (id, w) -> weights.(id) <- w) r.weightses;
  { model; program; dispatcher; handlers; bias; weights }

(* The builder aligned exactly the function heads and the dispatcher, so
   entries are recoverable from address alignment. *)
let function_entries t =
  let entries = ref [] in
  Program.iter
    (fun b ->
      if b.Basic_block.addr mod Program.block_alignment = 0 then
        entries := b.Basic_block.id :: !entries)
    t.program;
  Array.of_list (List.rev !entries)
