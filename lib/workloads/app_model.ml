type t = {
  name : string;
  seed : int;
  n_functions : int;
  hot_functions : int;
  blocks_per_function : int;
  handler_blocks : int;
  block_bytes_mean : int;
  cond_fraction : float;
  call_fraction : float;
  lib_call_fraction : float;
  indirect_call_fraction : float;
  indirect_jump_fraction : float;
  loop_fraction : float;
  loop_iters_mean : int;
  branch_entropy : float;
  polymorphic_fraction : float;
  zipf_s : float;
  callee_zipf_s : float;
  sequential_dispatch : bool;
  kernel_fraction : float;
  kernel_call_fraction : float;
  jit_fraction : float;
  phase_len_instrs : int;
  call_levels : int;
}

let default =
  {
    name = "default";
    seed = 1;
    n_functions = 550;
    hot_functions = 110;
    blocks_per_function = 18;
    handler_blocks = 220;
    block_bytes_mean = 36;
    cond_fraction = 0.40;
    call_fraction = 0.08;
    lib_call_fraction = 0.02;
    indirect_call_fraction = 0.03;
    indirect_jump_fraction = 0.02;
    loop_fraction = 0.15;
    loop_iters_mean = 6;
    branch_entropy = 0.40;
    polymorphic_fraction = 0.25;
    zipf_s = 1.30;
    callee_zipf_s = 1.10;
    sequential_dispatch = false;
    kernel_fraction = 0.05;
    kernel_call_fraction = 0.01;
    jit_fraction = 0.0;
    phase_len_instrs = 1_200_000;
    call_levels = 6;
  }

let approx_footprint_bytes t =
  (t.hot_functions * t.handler_blocks * t.block_bytes_mean)
  + ((t.n_functions - t.hot_functions) * t.blocks_per_function * t.block_bytes_mean)

let pp fmt t =
  Format.fprintf fmt
    "@[%s: %d fns (%d hot), ~%d KiB text, entropy %.2f, zipf %.2f, kernel %.2f, jit %.2f%s@]"
    t.name t.n_functions t.hot_functions
    (approx_footprint_bytes t / 1024)
    t.branch_entropy t.zipf_s t.kernel_fraction t.jit_fraction
    (if t.sequential_dispatch then ", sequential" else "")
