type t = { registry : Registry.t; spans : Span.t }

let create ?clock () = { registry = Registry.create (); spans = Span.create ?clock () }
let registry t = t.registry
let spans t = t.spans
let snapshot t = Snapshot.v ~registry:t.registry ~spans:t.spans
