(** Structured wall-clock spans with parent/child nesting.

    A recorder holds one span stack (the pipeline is single-threaded per
    run; concurrent cells each own a recorder).  Spans are identified by
    name, and a span's {e path} is the ["/"]-joined chain of its open
    ancestors — ["pipeline/inject"] — which is what exports group by.

    The clock is pluggable seconds-since-epoch; readings are clamped to
    be monotone non-decreasing, so a stepped system clock can shorten a
    span to zero but never make it negative.  Durations are inherently
    nondeterministic and are therefore {e excluded} from {!Snapshot}
    views — only structure (paths, counts, nesting) crosses into
    determinism-sensitive output; wall times surface solely through
    {!Export.chrome_trace}. *)

type t

type closed = {
  path : string;  (** "/"-joined ancestry, e.g. ["run/simulate"] *)
  name : string;
  depth : int;  (** 0 for roots *)
  seq : int;  (** open order, 0-based *)
  start_s : float;
  stop_s : float;
}

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]. *)

val epoch : t -> float
(** The recorder's creation time — the trace's [ts = 0]. *)

val enter : t -> string -> unit

val exit : t -> unit
(** Closes the innermost open span; raises [Invalid_argument] when none
    is open. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [enter]/[exit] bracket; the span is closed even when the thunk
    raises. *)

val open_spans : t -> int
(** Currently open (entered, not yet exited) spans. *)

val opened_total : t -> int
(** Spans ever entered; equals [List.length (closed t) + open_spans t]. *)

val closed : t -> closed list
(** In open ([seq]) order. *)

val paths : t -> (string * int) list
(** Closed-span occurrence count per path, name-sorted — the
    deterministic structural view {!Snapshot} embeds. *)
