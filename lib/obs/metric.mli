(** Typed metric cells.

    Each cell is a plain mutable record — updating one is a field store
    (plus, for histograms, a bucket scan over a short immediate-int
    array), never an allocation — so instrumented hot paths keep the
    allocation profile PR 2 established.  Cells are created through a
    {!Registry}, which owns the name → cell mapping; the cell itself is
    what instrumented code holds on to, so the registry lookup happens
    once per run, not once per event. *)

type counter = {
  c_name : string;
  c_help : string;
  mutable count : int;
}
(** Monotone event count. *)

type gauge = {
  g_name : string;
  g_help : string;
  mutable value : float;
}
(** Last-write-wins instantaneous value. *)

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (** ascending upper bucket bounds *)
  counts : int array;  (** [Array.length bounds + 1] cells; last = +Inf *)
  mutable sum : float;
  mutable observations : int;
}
(** Cumulative bucketed distribution. *)

type series = {
  s_name : string;
  s_help : string;
  mutable at : int array;  (** virtual timestamps (e.g. trace indices) *)
  mutable values : float array;
  mutable n : int;
}
(** Periodic samples over {e virtual} time (a deterministic coordinate
    such as the trace index), so sampled values are identical across
    pool sizes and machines; wall-clock never enters a series. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Adds the observation to the first bucket whose bound is >= the
    value (the overflow bucket when none is). *)

val sample : series -> at:int -> float -> unit
(** Appends one [(at, value)] point (amortised-O(1) array growth). *)

val series_points : series -> (int * float) array
val series_last : series -> float option

(** {2 Labels}

    A labeled cell is an ordinary cell whose registry name carries an
    OpenMetrics label set: [name{key="value",...}].  The registry treats
    the whole string as the key, so each label combination is its own
    cell; {!Snapshot.to_openmetrics} groups cells by {!family_of} and
    emits one [# TYPE] line per family.  Convention: a family is either
    always labeled or never labeled — mixing breaks the name-sorted
    grouping. *)

val labelled : string -> (string * string) list -> string
(** [labelled name [(k, v); ...]] renders the labeled cell name
    [name\{k="v",...\}] with label values escaped per OpenMetrics
    (backslash, double quote, newline); an empty label list yields
    [name] unchanged. *)

val family_of : string -> string
(** The metric-family part of a (possibly labeled) cell name: everything
    before the first [{]. *)

val labels_of : string -> string
(** The label part including braces ([""] when unlabeled). *)
