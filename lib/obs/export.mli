(** Pluggable trace/metrics sinks.

    Two renderings of one {!Run.t}:

    - {!chrome_trace}: Chrome [trace_event] JSON (the
      ["traceEvents"]-array format), loadable in [chrome://tracing] and
      {{:https://ui.perfetto.dev}Perfetto}.  Closed spans become
      complete (["ph": "X"]) duration events on pid 1 with microsecond
      timestamps relative to the recorder's epoch; metric series become
      counter (["ph": "C"]) events on pid 2, timestamped in {e virtual}
      time (their sample coordinate, e.g. the trace index), one track
      per series.
    - {!openmetrics}: the {!Snapshot.to_openmetrics} text exposition of
      the run's deterministic snapshot.

    A {!sink} packages a rendering with a name so front ends can offer
    the catalogue ([--format]-style) without knowing each format. *)

type sink = {
  name : string;  (** ["chrome-trace"], ["openmetrics"] *)
  extension : string;  (** conventional file extension, e.g. [".json"] *)
  render : Run.t -> string;
}

val chrome_trace : ?process_name:string -> Run.t -> Ripple_util.Json.t
val openmetrics : Run.t -> string

val chrome_sink : sink
val openmetrics_sink : sink

val sinks : sink list
val find_sink : string -> sink option

val write : sink -> path:string -> Run.t -> unit
(** Renders to a temp file in [path]'s directory, then renames — the
    same atomic-write discipline as the sweep reports. *)
