module Json = Ripple_util.Json

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }
  | Series of (int * float) array

type t = { metrics : (string * value) list; spans : (string * int) list }

let empty = { metrics = []; spans = [] }

let value_of_cell = function
  | Registry.Counter c -> Counter c.Metric.count
  | Registry.Gauge g -> Gauge g.Metric.value
  | Registry.Histogram h ->
    Histogram
      {
        bounds = Array.copy h.Metric.bounds;
        counts = Array.copy h.Metric.counts;
        sum = h.Metric.sum;
        count = h.Metric.observations;
      }
  | Registry.Series s -> Series (Metric.series_points s)

let v ~registry ~spans =
  {
    metrics = List.map (fun (name, cell) -> (name, value_of_cell cell)) (Registry.cells registry);
    spans = Span.paths spans;
  }

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram h1, Histogram h2 ->
    if h1.bounds <> h2.bounds then
      invalid_arg
        (Printf.sprintf "Ripple_obs.Snapshot.merge: histogram %S bucket bounds differ" name);
    Histogram
      {
        bounds = h1.bounds;
        counts = Array.map2 ( + ) h1.counts h2.counts;
        sum = h1.sum +. h2.sum;
        count = h1.count + h2.count;
      }
  | Series xs, Series ys -> Series (Array.append xs ys)
  | _ ->
    invalid_arg (Printf.sprintf "Ripple_obs.Snapshot.merge: metric %S changes type" name)

(* Merge two name-sorted association lists, combining values on name
   collision.  Both inputs are sorted (the [v]/[merge] invariant), so
   this is a linear zip. *)
let rec merge_sorted combine xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | (nx, vx) :: tx, (ny, vy) :: ty ->
    let c = String.compare nx ny in
    if c = 0 then (nx, combine nx vx vy) :: merge_sorted combine tx ty
    else if c < 0 then (nx, vx) :: merge_sorted combine tx ys
    else (ny, vy) :: merge_sorted combine xs ty

let merge a b =
  {
    metrics = merge_sorted merge_value a.metrics b.metrics;
    spans = merge_sorted (fun _ x y -> x + y) a.spans b.spans;
  }

let metric_names t = List.map fst t.metrics

let value_to_json = function
  | Counter n -> Json.Int n
  | Gauge v -> Json.Float v
  | Histogram h ->
    Json.Obj
      [
        ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
        ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
        ("sum", Json.Float h.sum);
        ("count", Json.Int h.count);
      ]
  | Series points ->
    Json.List
      (Array.to_list
         (Array.map (fun (at, v) -> Json.List [ Json.Int at; Json.Float v ]) points))

let to_json t =
  Json.Obj
    [
      ("metrics", Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) t.metrics));
      ("spans", Json.Obj (List.map (fun (path, n) -> (path, Json.Int n)) t.spans));
    ]

(* OpenMetrics wants a decimal rendering; reuse the JSON float printer
   so equal values render identically everywhere. *)
let float_str v = Json.to_string (Json.Float v)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ | Series _ -> "gauge"
  | Histogram _ -> "histogram"

(* Merge [extra] (e.g. [le="0.5"]) into a rendered label set: [""] gains
   braces, [{k="v"}] gains a trailing [,extra]. *)
let with_label labels extra =
  if labels = "" then Printf.sprintf "{%s}" extra
  else Printf.sprintf "%s,%s}" (String.sub labels 0 (String.length labels - 1)) extra

let to_openmetrics t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  (* Metrics are name-sorted, and a family is never both labeled and
     unlabeled, so every family's cells are contiguous: one [# TYPE]
     line opens each group. *)
  let current = ref "" in
  List.iter
    (fun (name, value) ->
      let family = Metric.family_of name in
      let labels = Metric.labels_of name in
      if family <> !current then begin
        current := family;
        line "# TYPE %s %s" family (kind_name value)
      end;
      match value with
      | Counter n -> line "%s_total%s %d" family labels n
      | Gauge v -> line "%s%s %s" family labels (float_str v)
      | Histogram h ->
        let cumulative = ref 0 in
        Array.iteri
          (fun i c ->
            cumulative := !cumulative + c;
            let le =
              if i < Array.length h.bounds then float_str h.bounds.(i) else "+Inf"
            in
            line "%s_bucket%s %d" family
              (with_label labels (Printf.sprintf "le=\"%s\"" le))
              !cumulative)
          h.counts;
        line "%s_sum%s %s" family labels (float_str h.sum);
        line "%s_count%s %d" family labels h.count
      | Series points ->
        let last =
          if Array.length points = 0 then 0.0 else snd points.(Array.length points - 1)
        in
        line "%s%s %s" family labels (float_str last))
    t.metrics;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
