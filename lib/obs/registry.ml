type cell =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram
  | Series of Metric.series

type t = { table : (string, cell) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Series _ -> "series"

let clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Ripple_obs.Registry: %S is a %s, requested as a %s" name
       (kind_name existing) wanted)

let counter t ?(help = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some other -> clash name other "counter"
  | None ->
    let c = { Metric.c_name = name; c_help = help; count = 0 } in
    Hashtbl.add t.table name (Counter c);
    c

let gauge t ?(help = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some other -> clash name other "gauge"
  | None ->
    let g = { Metric.g_name = name; g_help = help; value = 0.0 } in
    Hashtbl.add t.table name (Gauge g);
    g

let histogram t ?(help = "") ~bounds name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some other -> clash name other "histogram"
  | None ->
    let bounds = Array.of_list bounds in
    let h =
      {
        Metric.h_name = name;
        h_help = help;
        bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.0;
        observations = 0;
      }
    in
    Hashtbl.add t.table name (Histogram h);
    h

let series t ?(help = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Series s) -> s
  | Some other -> clash name other "series"
  | None ->
    let s = { Metric.s_name = name; s_help = help; at = [||]; values = [||]; n = 0 } in
    Hashtbl.add t.table name (Series s);
    s

let find t name = Hashtbl.find_opt t.table name

let cells t =
  Hashtbl.fold (fun name cell acc -> (name, cell) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let names t = List.map fst (cells t)
