(** Per-run metric registry: the name → cell mapping.

    Each pipeline run (or experiment cell) owns one registry, so metrics
    from concurrent cells never share mutable state — determinism across
    pool sizes falls out of ownership, not locking.  Creation is
    find-or-create: asking twice for the same name returns the same
    cell; asking for an existing name with a different metric type is a
    programming error and raises [Invalid_argument].

    Registration order is remembered only for iteration; every rendered
    view ({!Snapshot}) sorts by name, so two registries holding the same
    cells render identically no matter the order the instrumented code
    touched them in. *)

type t

type cell =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram
  | Series of Metric.series

val create : unit -> t

val counter : t -> ?help:string -> string -> Metric.counter
val gauge : t -> ?help:string -> string -> Metric.gauge

val histogram : t -> ?help:string -> bounds:float list -> string -> Metric.histogram
(** [bounds] are ascending upper bucket bounds (an overflow bucket is
    implicit); ignored when the histogram already exists. *)

val series : t -> ?help:string -> string -> Metric.series

val find : t -> string -> cell option

val cells : t -> (string * cell) list
(** Name-sorted. *)

val names : t -> string list
(** Name-sorted. *)
