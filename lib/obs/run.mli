(** The per-run observability context: one {!Registry} plus one
    {!Span} recorder, created together and threaded through a pipeline
    run (or one experiment cell).  There is deliberately no global
    context — sharing happens by passing the value, which is what keeps
    concurrent cells independent and their snapshots deterministic. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
val registry : t -> Registry.t
val spans : t -> Span.t

val snapshot : t -> Snapshot.t
(** The deterministic view: metric values plus span structure, no
    durations (see {!Snapshot}). *)
