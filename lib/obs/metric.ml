type counter = { c_name : string; c_help : string; mutable count : int }
type gauge = { g_name : string; g_help : string; mutable value : float }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable observations : int;
}

type series = {
  s_name : string;
  s_help : string;
  mutable at : int array;
  mutable values : float array;
  mutable n : int;
}

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let set g v = g.value <- v

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.observations <- h.observations + 1

let sample s ~at v =
  if s.n = Array.length s.at then begin
    let cap = max 16 (2 * s.n) in
    let at' = Array.make cap 0 and values' = Array.make cap 0.0 in
    Array.blit s.at 0 at' 0 s.n;
    Array.blit s.values 0 values' 0 s.n;
    s.at <- at';
    s.values <- values'
  end;
  s.at.(s.n) <- at;
  s.values.(s.n) <- v;
  s.n <- s.n + 1

let series_points s = Array.init s.n (fun i -> (s.at.(i), s.values.(i)))
let series_last s = if s.n = 0 then None else Some s.values.(s.n - 1)

(* OpenMetrics label-value escaping: backslash, double quote, newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labelled name labels =
  match labels with
  | [] -> name
  | labels ->
    let buf = Buffer.create (String.length name + 16) in
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

let family_of name = match String.index_opt name '{' with None -> name | Some i -> String.sub name 0 i
let labels_of name = match String.index_opt name '{' with None -> "" | Some i -> String.sub name i (String.length name - i)
