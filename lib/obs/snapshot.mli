(** The deterministic view of a run's observability state.

    A snapshot carries metric values and span {e structure} (path →
    occurrence count) but never wall-clock durations: everything in a
    snapshot is a pure function of the work performed, so the same
    experiment cell snapshots byte-identically whether it ran alone or
    on a 4-domain pool — the property the sweep JSONL [metrics] object
    is built on.  Wall times live only in {!Export.chrome_trace}. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }
  | Series of (int * float) array  (** (virtual time, value) samples *)

type t = {
  metrics : (string * value) list;  (** name-sorted *)
  spans : (string * int) list;  (** span path → closed count, path-sorted *)
}

val empty : t
val v : registry:Registry.t -> spans:Span.t -> t

val merge : t -> t -> t
(** Pointwise union: counters and histograms sum (histograms must agree
    on bounds), gauges take the right operand, series concatenate, span
    counts sum.  Associative with {!empty} as identity, so folding cell
    snapshots in submission order gives one deterministic sweep-level
    aggregate. *)

val metric_names : t -> string list

val to_json : t -> Ripple_util.Json.t
(** Deterministic: equal snapshots render byte-identically. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition, sorted by name: a [# TYPE] line per
    family (labeled cells — see {!Metric.labelled} — group under their
    family, one sample per label set), counter samples suffixed
    [_total], histograms as [_bucket{le=...}]/[_sum]/[_count], series as
    gauges holding their last sample, terminated by [# EOF].  Loadable
    by Prometheus-compatible scrapers; the [# TYPE] lines are the
    metric-name schema CI diffs against [docs/metrics.schema]. *)
