type closed = {
  path : string;
  name : string;
  depth : int;
  seq : int;
  start_s : float;
  stop_s : float;
}

type open_span = { o_name : string; o_path : string; o_seq : int; o_start : float }

type t = {
  clock : unit -> float;
  epoch : float;
  mutable last : float;  (* monotonicity clamp *)
  mutable stack : open_span list;
  mutable closed_rev : closed list;
  mutable n_closed : int;
  mutable n_opened : int;
}

let create ?(clock = Unix.gettimeofday) () =
  let t0 = clock () in
  { clock; epoch = t0; last = t0; stack = []; closed_rev = []; n_closed = 0; n_opened = 0 }

let now t =
  let v = t.clock () in
  if v > t.last then t.last <- v;
  t.last

let epoch t = t.epoch

let enter t name =
  let path =
    match t.stack with [] -> name | parent :: _ -> parent.o_path ^ "/" ^ name
  in
  t.stack <- { o_name = name; o_path = path; o_seq = t.n_opened; o_start = now t } :: t.stack;
  t.n_opened <- t.n_opened + 1

let exit t =
  match t.stack with
  | [] -> invalid_arg "Ripple_obs.Span.exit: no open span"
  | s :: rest ->
    t.stack <- rest;
    t.closed_rev <-
      {
        path = s.o_path;
        name = s.o_name;
        depth = List.length rest;
        seq = s.o_seq;
        start_s = s.o_start;
        stop_s = now t;
      }
      :: t.closed_rev;
    t.n_closed <- t.n_closed + 1

let with_span t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> exit t) f

let open_spans t = List.length t.stack
let opened_total t = t.n_opened

let closed t =
  List.sort (fun a b -> compare a.seq b.seq) (List.rev t.closed_rev)

let paths t =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Hashtbl.replace counts c.path
        (1 + Option.value (Hashtbl.find_opt counts c.path) ~default:0))
    t.closed_rev;
  Hashtbl.fold (fun path n acc -> (path, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
