module Json = Ripple_util.Json

type sink = { name : string; extension : string; render : Run.t -> string }

let us ~epoch t = Json.Float (1e6 *. (t -. epoch))

let span_event ~epoch (c : Span.closed) =
  Json.Obj
    [
      ("name", Json.String c.Span.name);
      ("cat", Json.String "ripple");
      ("ph", Json.String "X");
      ("ts", us ~epoch c.Span.start_s);
      ("dur", Json.Float (1e6 *. (c.Span.stop_s -. c.Span.start_s)));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj [ ("path", Json.String c.Span.path) ]);
    ]

let counter_events (s : Metric.series) =
  Array.to_list
    (Array.map
       (fun (at, v) ->
         Json.Obj
           [
             ("name", Json.String s.Metric.s_name);
             ("cat", Json.String "ripple");
             ("ph", Json.String "C");
             ("ts", Json.Int at);
             ("pid", Json.Int 2);
             ("tid", Json.Int 0);
             ("args", Json.Obj [ ("value", Json.Float v) ]);
           ])
       (Metric.series_points s))

let process_meta ~pid name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let chrome_trace ?(process_name = "ripple-sim") run =
  let spans = Run.spans run in
  let epoch = Span.epoch spans in
  let span_events = List.map (span_event ~epoch) (Span.closed spans) in
  let series_events =
    List.concat_map
      (fun (_, cell) ->
        match cell with Registry.Series s -> counter_events s | _ -> [])
      (Registry.cells (Run.registry run))
  in
  let meta =
    [
      process_meta ~pid:1 process_name;
      process_meta ~pid:2 (process_name ^ " (virtual time)");
    ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ span_events @ series_events));
      ("displayTimeUnit", Json.String "ms");
    ]

let openmetrics run = Snapshot.to_openmetrics (Run.snapshot run)

let chrome_sink =
  {
    name = "chrome-trace";
    extension = ".json";
    render = (fun run -> Json.to_string (chrome_trace run) ^ "\n");
  }

let openmetrics_sink = { name = "openmetrics"; extension = ".txt"; render = openmetrics }

let sinks = [ chrome_sink; openmetrics_sink ]
let find_sink name = List.find_opt (fun s -> s.name = name) sinks

let write sink ~path run =
  let rendered = sink.render run in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  try
    let oc = open_out_bin tmp in
    output_string oc rendered;
    close_out oc;
    Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
