(** Umbrella namespace: one [open Ripple] (or [Ripple.Pipeline.…]) gives
    access to the whole system.  Sub-library boundaries (and their
    documentation) live in [lib/<name>/*.mli]; this module only
    re-exports them under stable, short names. *)

(* Utilities *)
module Prng = Ripple_util.Prng
module Ring_queue = Ripple_util.Ring_queue
module Summary = Ripple_util.Summary
module Table = Ripple_util.Table
module Json = Ripple_util.Json

(* Program representation *)
module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Builder = Ripple_isa.Builder

(* Tracing *)
module Packet = Ripple_trace.Packet
module Pt = Ripple_trace.Pt
module Lbr = Ripple_trace.Lbr
module Bb_trace = Ripple_trace.Bb_trace

(* Workloads *)
module App_model = Ripple_workloads.App_model
module Cfg_gen = Ripple_workloads.Cfg_gen
module Executor = Ripple_workloads.Executor
module Apps = Ripple_workloads.Apps

(* Caches and replacement *)
module Geometry = Ripple_cache.Geometry
module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream
module Cache = Ripple_cache.Cache
module Cache_stats = Ripple_cache.Stats
module Policy = Ripple_cache.Policy
module Lru = Ripple_cache.Lru
module Random_policy = Ripple_cache.Random_policy
module Srrip = Ripple_cache.Srrip
module Drrip = Ripple_cache.Drrip
module Ghrp = Ripple_cache.Ghrp
module Hawkeye = Ripple_cache.Hawkeye
module Ship = Ripple_cache.Ship
module Belady = Ripple_cache.Belady
module Registry = Ripple_cache.Registry

(* Prefetchers *)
module Prefetcher = Ripple_prefetch.Prefetcher
module Nlp = Ripple_prefetch.Nlp
module Fdip = Ripple_prefetch.Fdip
module Rdip = Ripple_prefetch.Rdip
module Branch_pred = Ripple_prefetch.Branch_pred

(* Timing simulation *)
module Config = Ripple_cpu.Config
module Hierarchy = Ripple_cpu.Hierarchy
module Simulator = Ripple_cpu.Simulator

(* Observability: spans, metrics, Chrome-trace / OpenMetrics export *)
module Obs = Ripple_obs

(* The paper's contribution *)
module Eviction_window = Ripple_core.Eviction_window
module Cue_block = Ripple_core.Cue_block
module Injector = Ripple_core.Injector
module Pipeline = Ripple_core.Pipeline

(* Static verification of CFGs and injected invalidations *)
module Finding = Ripple_analysis.Finding
module Cfg = Ripple_analysis.Cfg
module Dominance = Ripple_analysis.Dominance
module Liveness = Ripple_analysis.Liveness
module Fixpoint = Ripple_analysis.Fixpoint
module Abs_cache = Ripple_analysis.Abs_cache
module Invalidation_check = Ripple_analysis.Invalidation_check
module Lint = Ripple_analysis.Lint

(* Experiment orchestration: parallel, resumable sweeps over the
   evaluation matrix *)
module Exp = Ripple_exp

(* Fault injection and the chaos harness *)
module Fault = Ripple_fault.Fault
module Chaos = Ripple_fault.Chaos

(* Continuous-profiling daemon: framed protocol, rolling windowed
   profiles, and the serve/push client-server pair *)
module Serve_protocol = Ripple_serve.Protocol
module Rolling = Ripple_serve.Rolling
module Session = Ripple_serve.Session
module Server = Ripple_serve.Server
module Serve_client = Ripple_serve.Client
