(* Network-level fault injectors for the serve protocol: seeded,
   frame-aware manglings of the client->server byte stream.  These are
   the transport-layer counterpart of {!Fault}'s data faults — instead
   of corrupting what the capture says, they corrupt how it travels:
   frames torn across writes, length prefixes destroyed, connections cut
   mid-frame, frames duplicated or held hostage.  The recovery story
   they exercise is the v2 push ({!Ripple_serve.Client.push_with_retries}
   against {!Ripple_serve.Session} sequence dedup): none of them may
   cost more than time. *)

module Prng = Ripple_util.Prng
module Json = Ripple_util.Json

type t =
  | Net_clean
  | Torn_frame  (* deliver the victim frame in two separate writes *)
  | Corrupt_length  (* blow up the victim frame's length prefix *)
  | Mid_frame_cut  (* deliver part of the victim frame, then drop the link *)
  | Duplicate_frame  (* deliver the victim frame twice *)
  | Stall_frame of { delay : float }  (* hold the victim frame [delay] seconds *)

let name = function
  | Net_clean -> "net-clean"
  | Torn_frame -> "torn-frame"
  | Corrupt_length -> "corrupt-length"
  | Mid_frame_cut -> "mid-frame-cut"
  | Duplicate_frame -> "duplicate-frame"
  | Stall_frame _ -> "stall-frame"

let to_string = function
  | Stall_frame { delay } -> Printf.sprintf "stall-frame:%g" delay
  | f -> name f

let to_json t =
  let param = match t with Stall_frame { delay } -> [ ("delay", Json.Float delay) ] | _ -> [] in
  Json.Obj (("class", Json.String (name t)) :: param)

(* What happens to one complete frame on the wire. *)
type action =
  | Deliver of bytes list  (* forward these runs, each as its own write *)
  | Deliver_then_cut of bytes list  (* forward, then drop the connection *)
  | Delay of float * bytes  (* hold the frame, then forward it *)

(* Deterministic per-(seed, index) choice of where to cut/tear: the same
   seed replays the same mangling, which is what lets a chaos report be
   reproduced from its seed alone. *)
let offset_in ~seed ~index len =
  let p = Prng.create ~seed:(seed lxor (0x9e3779b9 * (index + 1))) in
  1 + Prng.int p (max 1 (len - 1))

let plan ~seed t ~victim ~index frame =
  let len = Bytes.length frame in
  if index <> victim || t = Net_clean then Deliver [ frame ]
  else
    match t with
    | Net_clean -> Deliver [ frame ]
    | Torn_frame ->
      (* Two writes with a seam chosen anywhere in the frame — usually
         inside the 5-byte header, the case a naive reader gets wrong. *)
      let cut = offset_in ~seed ~index len in
      Deliver [ Bytes.sub frame 0 cut; Bytes.sub frame cut (len - cut) ]
    | Corrupt_length ->
      (* Frames are tag byte + u32 big-endian length: force the length's
         top byte sky-high so the receiver sees an absurd frame and must
         reject the stream rather than wait forever for 2 GiB. *)
      let mangled = Bytes.copy frame in
      if len >= 2 then Bytes.set mangled 1 '\x7f';
      Deliver [ mangled ]
    | Mid_frame_cut ->
      let keep = offset_in ~seed ~index len in
      Deliver_then_cut [ Bytes.sub frame 0 keep ]
    | Duplicate_frame -> Deliver [ frame; frame ]
    | Stall_frame { delay } -> Delay (delay, frame)

(* Split a well-formed frame stream back into frames (tag + u32 BE
   length + payload).  Like {!Fault.packets}, this only ever sees
   streams a {!Ripple_serve.Protocol.write_frame} just produced, so
   strict parsing is fine; garbage would only follow a mangling we
   introduced ourselves, downstream of the splitter. *)
module Splitter = struct
  type s = { mutable buf : bytes; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let add s data n =
    let need = s.len + n in
    if need > Bytes.length s.buf then begin
      let bigger = Bytes.create (max need (2 * Bytes.length s.buf)) in
      Bytes.blit s.buf 0 bigger 0 s.len;
      s.buf <- bigger
    end;
    Bytes.blit data 0 s.buf s.len n;
    s.len <- s.len + n

  let pop s =
    if s.len < 5 then None
    else begin
      let payload =
        (Char.code (Bytes.get s.buf 1) lsl 24)
        lor (Char.code (Bytes.get s.buf 2) lsl 16)
        lor (Char.code (Bytes.get s.buf 3) lsl 8)
        lor Char.code (Bytes.get s.buf 4)
      in
      let total = 5 + payload in
      if s.len < total then None
      else begin
        let frame = Bytes.sub s.buf 0 total in
        Bytes.blit s.buf total s.buf 0 (s.len - total);
        s.len <- s.len - total;
        Some frame
      end
    end
end
