(* Network-level chaos: drive a LIVE serve daemon through a seeded
   fault proxy and assert the crash-only contract end to end.

   Each fault cell forks a real daemon, forks a proxy that mangles the
   client->server stream with one {!Net_fault} injection, and runs the
   resumable push through it; the cell passes when the push completes
   and the daemon's session state is indistinguishable from a run that
   saw no fault at all (same status report, same profile digest).  The
   final cell is harsher: it kill -9s the daemon mid-capture and
   restarts it on the same state directory, asserting the recovered,
   resumed session is byte-equivalent to an uninterrupted one.

   Exit semantics mirror {!Chaos}: 0 clean, 1 state loss (push done but
   state diverged), 2 crash (push failed, daemon died badly, or the
   harness itself broke). *)

module W = Ripple_workloads
module Pt = Ripple_trace.Pt
module Pipeline = Ripple_core.Pipeline
module Server = Ripple_serve.Server
module Client = Ripple_serve.Client
module Protocol = Ripple_serve.Protocol
module Json = Ripple_util.Json
module Table = Ripple_util.Table

type outcome = {
  label : string;
  fault : Net_fault.t option;  (* None for the kill -9 recovery cell *)
  pushed : bool;
  attempts : int;  (* 0 when the push never succeeded *)
  equivalent : bool;  (* live session state = uninterrupted control *)
  daemon_clean : bool;  (* every daemon incarnation drained with exit 0 *)
  detail : string;  (* failure explanation, "" when clean *)
}

type report = { cells : outcome list; crashes : int; losses : int }

(* ------------------------------ plumbing ----------------------------- *)

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let write_all fd b pos len =
  let sent = ref pos in
  while !sent < pos + len do
    sent := !sent + Unix.write fd b !sent (pos + len - !sent)
  done

let fork_child f =
  match Unix.fork () with
  | 0 ->
    let code = try f () with _ -> 2 in
    (* _exit: the child must not run the parent's at_exit hooks (spill
       sweeps would unlink files the parent still owns). *)
    Unix._exit code
  | pid -> pid

(* SIGTERM, grace period, then SIGKILL.  Returns true iff the process
   drained cleanly (exit 0). *)
let terminate pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        false
      end
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
    | _, Unix.WEXITED 0 -> true
    | _, _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
  in
  wait ()

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let wait_for ?(timeout = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let read_ready path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  match String.split_on_char ' ' (String.trim line) with
  | port :: _ -> int_of_string port
  | [] -> failwith "empty ready file"

(* Reserve an ephemeral port by binding and releasing it: both daemon
   incarnations in the recovery cell must listen on the SAME port so
   the pusher's retry loop finds the restarted one. *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close fd;
  port

(* ------------------------------- proxy ------------------------------- *)

(* Sequential TCP relay: each inbound connection is forwarded to the
   daemon, with the FIRST connection's client->server frames run
   through the fault plan (retry connections pass clean — a fault is
   one event, recovery must finish the job). *)
let run_proxy ~server_port ~ready_path ~seed ~fault ~victim () =
  ignore_sigpipe ();
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 16;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let oc = open_out ready_path in
  Printf.fprintf oc "%d\n" port;
  close_out oc;
  let buf = Bytes.create 65536 in
  let conn_index = ref 0 in
  let frame_index = ref 0 in
  while true do
    let cfd, _ = Unix.accept lfd in
    let mangle = !conn_index = 0 in
    incr conn_index;
    (match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> Unix.close cfd
    | sfd -> (
      match Unix.connect sfd (Unix.ADDR_INET (Unix.inet_addr_loopback, server_port)) with
      | exception Unix.Unix_error _ ->
        Unix.close cfd;
        Unix.close sfd
      | () ->
        let split = Net_fault.Splitter.create () in
        let alive = ref true in
        (try
           while !alive do
             match Unix.select [ cfd; sfd ] [] [] (-1.0) with
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | readable, _, _ ->
               (if List.mem sfd readable then
                  match Unix.read sfd buf 0 (Bytes.length buf) with
                  | 0 -> alive := false
                  | n -> write_all cfd buf 0 n);
               if !alive && List.mem cfd readable then
                 match Unix.read cfd buf 0 (Bytes.length buf) with
                 | 0 -> alive := false
                 | n ->
                   if not mangle then write_all sfd buf 0 n
                   else begin
                     Net_fault.Splitter.add split buf n;
                     let rec drain () =
                       if !alive then
                         match Net_fault.Splitter.pop split with
                         | None -> ()
                         | Some frame ->
                           let index = !frame_index in
                           incr frame_index;
                           (match Net_fault.plan ~seed fault ~victim ~index frame with
                           | Net_fault.Deliver runs ->
                             List.iter (fun r -> write_all sfd r 0 (Bytes.length r)) runs;
                             drain ()
                           | Net_fault.Deliver_then_cut runs ->
                             List.iter (fun r -> write_all sfd r 0 (Bytes.length r)) runs;
                             alive := false
                           | Net_fault.Delay (d, r) ->
                             Unix.sleepf d;
                             write_all sfd r 0 (Bytes.length r);
                             drain ())
                     in
                     drain ()
                   end
           done
         with Unix.Unix_error _ -> ());
        (try Unix.close cfd with Unix.Unix_error _ -> ());
        (try Unix.close sfd with Unix.Unix_error _ -> ())))
  done;
  0

(* ------------------------------ harness ------------------------------ *)

let harness_config ~window ~state_dir ~port ~ready_file =
  {
    Server.default_config with
    Server.port;
    window;
    options =
      {
        Pipeline.Options.default with
        Pipeline.Options.degrade = true;
        prefetch = Pipeline.No_prefetch;
      };
    ready_file = Some ready_file;
    state_dir;
    idle_timeout = 30.0;
  }

let expect_ok = function
  | Protocol.Ok json -> json
  | Protocol.Error msg -> failwith ("chaos control: " ^ msg)

(* The uninterrupted run, in-process: what the live daemon's session
   must be indistinguishable from. *)
let control_status ~config ~app ~chunk data =
  let t = Server.create { config with Server.state_dir = None; ready_file = None } in
  let conn = Server.Conn.create () in
  let handle frame = fst (Server.Conn.handle t conn frame) in
  ignore (expect_ok (handle (Protocol.Hello_v { app; version = Protocol.version })) : Json.t);
  let len = Bytes.length data in
  let n = (len + chunk - 1) / chunk in
  for i = 0 to n - 1 do
    let piece = Bytes.sub data (i * chunk) (min chunk (len - (i * chunk))) in
    ignore (expect_ok (handle (Protocol.Chunk_seq { seq = i; data = piece })) : Json.t)
  done;
  ignore (expect_ok (handle (Protocol.Flush_seq { seq = n })) : Json.t);
  expect_ok (handle Protocol.Status)

let live_status ~port ~app =
  let c = Client.connect ~timeout:5.0 ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      ignore (expect_ok (Client.request c (Protocol.Hello app)) : Json.t);
      expect_ok (Client.request c Protocol.Status))

let spawn_daemon ~config = fork_child (fun () -> Server.serve_forever (Server.create config); 0)

let await_ready path =
  if not (wait_for (fun () -> Sys.file_exists path && (Unix.stat path).Unix.st_size > 0)) then
    failwith "daemon never became ready";
  read_ready path

(* One fault cell: daemon + proxy + resumable push, then verdicts. *)
let run_fault_cell ~config ~app ~chunk ~seed ~timeout ~data fault =
  let dir = fresh_dir "ripple-net-chaos" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ready = Filename.concat dir "ready" in
      let daemon = spawn_daemon ~config:{ config with Server.ready_file = Some ready } in
      match await_ready ready with
      | exception e ->
        kill9 daemon;
        raise e
      | server_port ->
        let n_chunks = (Bytes.length data + chunk - 1) / chunk in
        (* Victim: always a sequenced chunk frame (hello is frame 0) —
           the dedup story under test lives there. *)
        let victim =
          1 + (Ripple_util.Prng.int (Ripple_util.Prng.create ~seed) (max 1 n_chunks))
        in
        let proxy_ready = Filename.concat dir "proxy-ready" in
        let proxy =
          fork_child (run_proxy ~server_port ~ready_path:proxy_ready ~seed ~fault ~victim)
        in
        Fun.protect
          ~finally:(fun () -> kill9 proxy)
          (fun () ->
            if not (wait_for (fun () -> Sys.file_exists proxy_ready)) then
              failwith "proxy never became ready";
            let proxy_port = read_ready proxy_ready in
            let push =
              Client.push_with_retries ~attempts:10 ~timeout ~backoff:0.05 ~seed ~chunk
                ~host:"127.0.0.1" ~port:proxy_port ~app data
            in
            let control = control_status ~config ~app ~chunk data in
            let pushed, attempts, detail =
              match push with
              | Ok { Client.attempts_used; _ } -> (true, attempts_used, "")
              | Error msg -> (false, 0, msg)
            in
            let equivalent, detail =
              if not pushed then (false, detail)
              else
                match live_status ~port:server_port ~app with
                | live ->
                  if Json.equal control live then (true, "")
                  else
                    ( false,
                      Printf.sprintf "state diverged: control=%s live=%s" (Json.to_string control)
                        (Json.to_string live) )
                | exception e -> (false, "status check failed: " ^ Printexc.to_string e)
            in
            let daemon_clean = terminate daemon in
            {
              label = Net_fault.to_string fault;
              fault = Some fault;
              pushed;
              attempts;
              equivalent;
              daemon_clean;
              detail;
            }))

(* The recovery cell: kill -9 mid-capture, restart on the same state
   directory, and let the SAME push_with_retries call finish the job —
   then the recovered session must be byte-equivalent to the control.
   With [kills > 1], the extra strikes land right after each recovery,
   proving a freshly restored daemon is itself recoverable (restore
   must never clobber the durable state it just loaded). *)
let run_recover_cell ~config ~app ~chunk ~seed ~label ~kills ~data =
  let dir = fresh_dir "ripple-net-chaos" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let state = Filename.concat dir "state" in
      let port = free_port () in
      let durable ready =
        {
          config with
          Server.port;
          state_dir = Some state;
          ready_file = Some (Filename.concat dir ready);
        }
      in
      let daemon_a = spawn_daemon ~config:(durable "ready-0") in
      ignore (await_ready (Filename.concat dir "ready-0") : int);
      let status_path = Filename.concat dir "push-status" in
      (* The pusher lives in its own process so the parent is free to
         murder and resurrect the daemon under its feet. *)
      let pusher =
        fork_child (fun () ->
            ignore_sigpipe ();
            match
              Client.push_with_retries ~attempts:20 ~timeout:2.0 ~backoff:0.1 ~seed ~chunk
                ~host:"127.0.0.1" ~port ~app data
            with
            | Ok { Client.status; attempts_used } ->
              let oc = open_out status_path in
              output_string oc (Json.to_string (Json.Obj [ ("status", status) ]));
              close_out oc;
              min attempts_used 255
            | Error _ -> 201)
      in
      let journal = Filename.concat state (app ^ ".journal") in
      let pusher_done () = match Unix.waitpid [ Unix.WNOHANG ] pusher with 0, _ -> false | _ -> true in
      (* Strike once the journal proves a chunk is in flight (or concede
         the race if the push already finished — recovery then starts
         from the final snapshot, which is still a valid recovery). *)
      let caught_midair =
        wait_for ~timeout:15.0 (fun () -> Sys.file_exists journal || pusher_done ())
        && Sys.file_exists journal
      in
      kill9 daemon_a;
      let rec resurrect i daemon =
        if i > kills then daemon
        else begin
          kill9 daemon;
          let ready = Printf.sprintf "ready-%d" i in
          let next = spawn_daemon ~config:(durable ready) in
          ignore (await_ready (Filename.concat dir ready) : int);
          resurrect (i + 1) next
        end
      in
      (* daemon_a is already dead; spawn incarnation 1, then kill and
         respawn once per remaining strike. *)
      let daemon_b = spawn_daemon ~config:(durable "ready-1") in
      ignore (await_ready (Filename.concat dir "ready-1") : int);
      let daemon_b = resurrect 2 daemon_b in
      let pusher_code =
        if pusher_done () then 0
        else
          match Unix.waitpid [] pusher with
          | _, Unix.WEXITED c -> c
          | _, _ -> 202
          | exception Unix.Unix_error _ -> 202
      in
      let pushed = Sys.file_exists status_path && pusher_code < 200 in
      let control = control_status ~config ~app ~chunk data in
      let equivalent, detail =
        if not pushed then (false, Printf.sprintf "pusher failed (code %d)" pusher_code)
        else
          match live_status ~port ~app with
          | live ->
            if Json.equal control live then
              (true, if caught_midair then "" else "note: push completed before kill -9")
            else
              ( false,
                Printf.sprintf "recovered state diverged: control=%s live=%s"
                  (Json.to_string control) (Json.to_string live) )
          | exception e -> (false, "status check failed: " ^ Printexc.to_string e)
      in
      let daemon_clean = terminate daemon_b in
      {
        label;
        fault = None;
        pushed;
        attempts = (if pushed then 1 else 0);
        equivalent;
        daemon_clean;
        detail;
      })

let default_faults ~stall_delay =
  [
    Net_fault.Net_clean;
    Net_fault.Torn_frame;
    Net_fault.Corrupt_length;
    Net_fault.Mid_frame_cut;
    Net_fault.Duplicate_frame;
    Net_fault.Stall_frame { delay = stall_delay };
  ]

let run ?(app = "kafka") ?(n_instrs = 40_000) ?(seed = 20240) ?(chunk = 1024)
    ?(timeout = 0.8) ?(stall_delay = 2.0) ?(window = 100_000) () =
  ignore_sigpipe ();
  let model =
    match W.Apps.by_name app with
    | Some m -> m
    | None -> failwith (Printf.sprintf "net chaos: unknown app %S" app)
  in
  let workload = W.Cfg_gen.generate model in
  let trace = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
  let data = Pt.encode workload.W.Cfg_gen.program trace in
  let config = harness_config ~window ~state_dir:None ~port:0 ~ready_file:"unused" in
  let config = { config with Server.ready_file = None } in
  let cell_of fault =
    let seed =
      (* Same per-cell seed idiom as {!Chaos.cell_seed}. *)
      let h = ref 0x811c9dc5 in
      String.iter
        (fun c ->
          h := !h lxor Char.code c;
          h := !h * 0x01000193 land 0x3FFFFFFF)
        (Printf.sprintf "%s/%s/%d" app (Net_fault.to_string fault) seed);
      !h
    in
    match run_fault_cell ~config ~app ~chunk ~seed ~timeout ~data fault with
    | cell -> cell
    | exception e ->
      {
        label = Net_fault.to_string fault;
        fault = Some fault;
        pushed = false;
        attempts = 0;
        equivalent = false;
        daemon_clean = false;
        detail = "harness: " ^ Printexc.to_string e;
      }
  in
  let cells = List.map cell_of (default_faults ~stall_delay) in
  let recover ~label ~kills =
    match run_recover_cell ~config ~app ~chunk ~seed ~label ~kills ~data with
    | cell -> cell
    | exception e ->
      {
        label;
        fault = None;
        pushed = false;
        attempts = 0;
        equivalent = false;
        daemon_clean = false;
        detail = "harness: " ^ Printexc.to_string e;
      }
  in
  let cells =
    cells
    @ [
        recover ~label:"kill9-recover" ~kills:1;
        recover ~label:"kill9x2-recover" ~kills:2;
      ]
  in
  let crashes =
    List.length (List.filter (fun c -> (not c.pushed) || not c.daemon_clean) cells)
  in
  let losses = List.length (List.filter (fun c -> c.pushed && not c.equivalent) cells) in
  { cells; crashes; losses }

(* ------------------------------ reporting ---------------------------- *)

let cell_to_json c =
  Json.Obj
    [
      ("cell", Json.String c.label);
      ("fault", match c.fault with Some f -> Net_fault.to_json f | None -> Json.Null);
      ("pushed", Json.Bool c.pushed);
      ("attempts", Json.Int c.attempts);
      ("equivalent", Json.Bool c.equivalent);
      ("daemon_clean", Json.Bool c.daemon_clean);
      ("detail", Json.String c.detail);
    ]

let report_to_json r =
  Json.Obj
    [
      ("cells", Json.List (List.map cell_to_json r.cells));
      ("n_cells", Json.Int (List.length r.cells));
      ("crashes", Json.Int r.crashes);
      ("losses", Json.Int r.losses);
    ]

let print_summary r =
  let table =
    Table.create ~title:"network chaos"
      ~columns:
        [
          ("cell", Table.Left);
          ("pushed", Table.Left);
          ("attempts", Table.Right);
          ("state", Table.Left);
          ("daemon", Table.Left);
          ("verdict", Table.Left);
        ]
  in
  List.iter
    (fun c ->
      Table.add_row table
        [
          c.label;
          (if c.pushed then "yes" else "NO");
          string_of_int c.attempts;
          (if c.equivalent then "equivalent" else "DIVERGED");
          (if c.daemon_clean then "clean" else "DIRTY");
          (if c.pushed && c.equivalent && c.daemon_clean then "ok"
           else List.hd (String.split_on_char '\n' (if c.detail = "" then "failed" else c.detail)));
        ])
    r.cells;
  Table.print table;
  Printf.printf "%d cells, %d crashes, %d state losses\n%!" (List.length r.cells) r.crashes
    r.losses

let exit_code r = if r.crashes > 0 then 2 else if r.losses > 0 then 1 else 0
