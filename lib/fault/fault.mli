(** Seeded, composable fault injectors for the chaos harness.

    Each fault models one way a profile goes bad in production:

    - {b PT stream corruption} ([Flip_tnt], [Drop_tip], [Garbage_tip],
      [Truncate_pt]): the trace ring overflowed or bytes rotted — the
      recovering decoder ({!Ripple_trace.Pt.decode_result}) must salvage
      what it can.
    - {b Capture truncation} ([Truncate_trace]): the profile covers only
      a prefix of the execution it claims to describe.
    - {b Profile drift} ([Layout_shift], [Edge_reshuffle], [Hot_swap]):
      the binary was rebuilt with shifted code, the reported edge
      weights no longer match the CFG, or the evaluated workload mix
      differs from the trained one (Fig. 13).

    Every injector is a pure function of [(seed, fault, input)], so a
    chaos cell is exactly as reproducible as any other experiment
    cell. *)

module Program := Ripple_isa.Program

type t =
  | Clean  (** no fault: the control row of the matrix *)
  | Flip_tnt of { flips : int }  (** flip random TNT payload bits *)
  | Drop_tip of { count : int }  (** delete random TIP packets *)
  | Garbage_tip of { count : int }  (** rewrite TIP targets to garbage *)
  | Truncate_pt of { keep : float }  (** keep this byte fraction of the payload *)
  | Truncate_trace of { keep : float }  (** keep this prefix of the capture *)
  | Layout_shift of { lines : int }  (** profile collected [lines] cache lines ago *)
  | Edge_reshuffle of { fraction : float }  (** scramble this fraction of transitions *)
  | Hot_swap of { rotation : int }  (** profile under a rotated handler mix *)

val name : t -> string
(** Stable kebab-case class name (no parameters). *)

val to_string : t -> string
(** Class name plus parameters, e.g. ["flip-tnt:32"]. *)

val to_json : t -> Ripple_util.Json.t

val corrupt_pt : seed:int -> t -> bytes -> bytes
(** Applies a PT-stream fault to a {e clean} encoded stream; identity
    for trace- and program-level faults.  The header is preserved (the
    stream still advertises the full execution), so the salvage ratio of
    the recovering decode reflects what the fault destroyed. *)

val apply_trace : seed:int -> t -> int array -> int array
(** Applies a decoded-trace fault ([Truncate_trace], [Edge_reshuffle]);
    identity otherwise. *)

val profile_program : t -> Program.t -> Program.t
(** The program layout the profile was (notionally) collected on:
    [Layout_shift] relocates the text by N cache lines; identity
    otherwise. *)

val profile_rotation : t -> int option
(** [Hot_swap]'s handler rotation for the profiling input, if any. *)

(** What the degradation ladder must do with a faulted profile for the
    chaos harness to pass the cell. *)
type expectation =
  | Expect_full  (** hints must survive intact *)
  | Expect_degraded  (** must step down to safe-only or off *)
  | Expect_off  (** must disable hints entirely *)
  | Expect_any  (** any level, as long as nothing crashes *)

val expectation_name : expectation -> string
val expectation : t -> expectation

val matrix : t list
(** The default chaos matrix: one [Clean] control plus the eight fault
    classes at their standard severities. *)
