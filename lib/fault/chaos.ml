module W = Ripple_workloads
module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module Registry = Ripple_cache.Registry
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Pool = Ripple_exp.Pool
module Json = Ripple_util.Json
module Table = Ripple_util.Table

module Obs = Ripple_obs

type outcome = {
  degrade : Pipeline.Degrade.t;
  pt_errors : int;
  injected : int;
  baseline_ipc : float;
  instrumented_ipc : float;
  violations : string list;
  metrics : Obs.Snapshot.t;
}

type status = Ran of outcome | Crashed of string

type cell = {
  app : string;
  fault : Fault.t;
  expectation : Fault.expectation;
  status : status;
}

type report = { cells : cell list; crashed : int; violations : int }

(* Per-(app, fault) seed: FNV-1a over the cell key folded with the run
   seed, the same idiom as {!Ripple_exp.Spec.prng_seed}. *)
let cell_seed ~seed app fault =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    (Printf.sprintf "%s/%s/%d" app (Fault.to_string fault) seed);
  !h

(* Build the (possibly faulted) profile artifact for one cell.  The
   fault decides which layer it attacks: the packet stream, the decoded
   capture, the profiled layout, or the profiling input. *)
let profile_of_fault ~seed ~n_instrs workload program train fault =
  match Fault.profile_rotation fault with
  | Some rotation ->
    (* Profile under a rotated handler mix: a clean capture of a
       legitimately different execution (Fig. 13's input drift). *)
    let base = W.Executor.train in
    let input =
      {
        base with
        W.Executor.handler_rotation = base.W.Executor.handler_rotation + rotation;
        label = Printf.sprintf "%s+rot%d" base.W.Executor.label rotation;
      }
    in
    let t = W.Executor.run workload ~input ~n_instrs in
    Pipeline.profile_of ~source:program (Pipeline.Pt_bytes (Pt.encode program t))
  | None -> begin
    let source = Fault.profile_program fault program in
    let t = Fault.apply_trace ~seed fault train in
    match fault with
    | Fault.Truncate_trace { keep } ->
      (* The capture is a clean prefix; what was lost is known, so the
         salvage ratio is declared rather than measured. *)
      { Pipeline.trace = t; source; salvage = keep; pt_errors = 0 }
    | Fault.Edge_reshuffle _ ->
      (* A reshuffled capture is no longer a legal path, so it cannot
         round-trip the codec; it reaches the pipeline as a decoded
         trace, the way a stitched LBR profile would. *)
      Pipeline.profile_of ~source (Pipeline.Trace t)
    | Fault.Clean | Fault.Flip_tnt _ | Fault.Drop_tip _ | Fault.Garbage_tip _
    | Fault.Truncate_pt _ | Fault.Layout_shift _ | Fault.Hot_swap _ ->
      let data = Fault.corrupt_pt ~seed fault (Pt.encode source t) in
      Pipeline.profile_of ~source (Pipeline.Pt_bytes data)
  end

let check_cell ~expectation ~(degrade : Pipeline.Degrade.t) ~baseline_ipc ~instrumented_ipc =
  let v = ref [] in
  let push fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  let level = degrade.Pipeline.Degrade.level in
  (match expectation with
  | Fault.Expect_any -> ()
  | Fault.Expect_full ->
    if level <> Pipeline.Degrade.Full then
      push "expected full hints, degraded to %s" (Pipeline.Degrade.level_name level)
  | Fault.Expect_degraded ->
    if level = Pipeline.Degrade.Full then push "expected degradation, profile fully trusted"
  | Fault.Expect_off ->
    if level <> Pipeline.Degrade.Hints_off then
      push "expected hints off, got %s" (Pipeline.Degrade.level_name level));
  if not (degrade.Pipeline.Degrade.salvage >= 0.0 && degrade.Pipeline.Degrade.salvage <= 1.0)
  then push "salvage %g outside [0, 1]" degrade.Pipeline.Degrade.salvage;
  if degrade.Pipeline.Degrade.drift < 0.0 then
    push "negative drift %g" degrade.Pipeline.Degrade.drift;
  (* With hints disabled the shipped binary is the original, so the run
     must match the uninstrumented baseline exactly — the never-worse
     guarantee under heavy drift. *)
  if level = Pipeline.Degrade.Hints_off && instrumented_ipc < baseline_ipc -. 1e-9 then
    push "hints-off IPC %.6f below uninstrumented baseline %.6f" instrumented_ipc baseline_ipc;
  List.rev !v

let run_cell ~seed ~n_instrs ~prefetch ~config ~policy ~workload ~program ~train ~eval ~warmup
    ~baseline_ipc fault =
  let expectation = Fault.expectation fault in
  let seed = cell_seed ~seed workload.W.Cfg_gen.model.W.App_model.name fault in
  match
    let profile = profile_of_fault ~seed ~n_instrs workload program train fault in
    (* min_support = 1: chaos traces are far shorter than real profiling
       runs, and the harness wants hints actually injected so degraded
       modes (and the safe-only stripper) have something to act on. *)
    let opts =
      {
        Pipeline.Options.default with
        Pipeline.Options.config;
        degrade = true;
        min_support = 1;
        prefetch;
        eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy ());
      }
    in
    let oc = Pipeline.run opts ~source:program (Pipeline.Profile profile) in
    let analysis = oc.Pipeline.analysis in
    let ev = Option.get oc.Pipeline.evaluation in
    let degrade = analysis.Pipeline.degrade in
    let instrumented_ipc = ev.Pipeline.result.Simulator.ipc in
    {
      degrade;
      pt_errors = profile.Pipeline.pt_errors;
      injected = analysis.Pipeline.injection.Ripple_core.Injector.injected;
      baseline_ipc;
      instrumented_ipc;
      violations = check_cell ~expectation ~degrade ~baseline_ipc ~instrumented_ipc;
      metrics = oc.Pipeline.metrics;
    }
  with
  | outcome -> Ran outcome
  | exception e -> Crashed (Printexc.to_string e)

let app_names () = List.map (fun m -> m.W.App_model.name) W.Apps.all

let run ?(apps = app_names ()) ?(faults = Fault.matrix) ?(n_instrs = 200_000) ?(seed = 20240)
    ?(prefetch = Pipeline.Fdip) ?(policy = "lru") ?(config = Config.default) ?jobs
    ?(progress = fun _ -> ()) () =
  let run_app app =
    let workload =
      match W.Apps.by_name app with
      | Some m -> W.Cfg_gen.generate m
      | None ->
        invalid_arg
          (Printf.sprintf "Chaos: unknown application %S (known: %s)" app
             (String.concat ", " (app_names ())))
    in
    let program = workload.W.Cfg_gen.program in
    let train = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
    let warmup = Array.length eval / 2 in
    let policy_factory = Registry.factory ~seed policy in
    let baseline =
      Simulator.run ~config ~warmup ~program ~trace:eval ~policy:policy_factory
        ~prefetcher:(Pipeline.prefetcher_of ~config prefetch)
        ()
    in
    let baseline_ipc = baseline.Simulator.ipc in
    List.map
      (fun fault ->
        let cell =
          {
            app;
            fault;
            expectation = Fault.expectation fault;
            status =
              run_cell ~seed ~n_instrs ~prefetch ~config ~policy:policy_factory ~workload
                ~program ~train ~eval ~warmup ~baseline_ipc fault;
          }
        in
        progress cell;
        cell)
      faults
  in
  let per_app = Pool.run ?jobs ~f:run_app (Array.of_list apps) in
  let cells =
    List.concat
      (List.map2
         (fun app r ->
           match r with
           | Some (Ok cells) -> cells
           | Some (Error e) ->
             (* The whole app context failed to build: every cell of the
                app is reported crashed rather than silently dropped. *)
             List.map
               (fun fault ->
                 { app; fault; expectation = Fault.expectation fault; status = Crashed e })
               faults
           | None -> assert false (* no breaker is installed here *))
         apps (Array.to_list per_app))
  in
  let crashed =
    List.length (List.filter (fun c -> match c.status with Crashed _ -> true | _ -> false) cells)
  in
  let violations =
    List.fold_left
      (fun acc c ->
        match c.status with Ran o -> acc + List.length o.violations | Crashed _ -> acc)
      0 cells
  in
  { cells; crashed; violations }

let exit_code report = if report.crashed > 0 then 2 else if report.violations > 0 then 1 else 0

(* Cells are ordered (app-major, fault-minor) regardless of pool size,
   and merge is a fold in that order, so the aggregate is deterministic
   across [jobs]. *)
let merged_metrics r =
  List.fold_left
    (fun acc c ->
      match c.status with Ran o -> Obs.Snapshot.merge acc o.metrics | Crashed _ -> acc)
    Obs.Snapshot.empty r.cells

let cell_to_json c =
  let base =
    [
      ("app", Json.String c.app);
      ("fault", Fault.to_json c.fault);
      ("fault_key", Json.String (Fault.to_string c.fault));
      ("expectation", Json.String (Fault.expectation_name c.expectation));
    ]
  in
  let payload =
    match c.status with
    | Crashed e -> [ ("status", Json.String "crashed"); ("error", Json.String e) ]
    | Ran o ->
      [
        ("status", Json.String "ok");
        ("degrade", Pipeline.Degrade.to_json o.degrade);
        ("pt_errors", Json.Int o.pt_errors);
        ("injected", Json.Int o.injected);
        ("baseline_ipc", Json.Float o.baseline_ipc);
        ("instrumented_ipc", Json.Float o.instrumented_ipc);
        ("violations", Json.List (List.map (fun s -> Json.String s) o.violations));
      ]
  in
  Json.Obj (base @ payload)

let report_to_json r =
  Json.Obj
    [
      ("cells", Json.List (List.map cell_to_json r.cells));
      ("n_cells", Json.Int (List.length r.cells));
      ("crashed", Json.Int r.crashed);
      ("violations", Json.Int r.violations);
    ]

let print_summary r =
  let table =
    Table.create ~title:"chaos matrix"
      ~columns:
        [
          ("cell", Table.Left);
          ("level", Table.Left);
          ("salvage", Table.Right);
          ("drift", Table.Right);
          ("hints", Table.Right);
          ("ipc/base", Table.Right);
          ("verdict", Table.Left);
        ]
  in
  List.iter
    (fun c ->
      let key = Printf.sprintf "%s/%s" c.app (Fault.to_string c.fault) in
      match c.status with
      | Crashed e ->
        Table.add_row table
          [
            key;
            "-";
            "-";
            "-";
            "-";
            "-";
            Printf.sprintf "CRASH: %s" (List.hd (String.split_on_char '\n' e));
          ]
      | Ran o ->
        let d = o.degrade in
        Table.add_row table
          [
            key;
            Pipeline.Degrade.level_name d.Pipeline.Degrade.level;
            Printf.sprintf "%.2f" d.Pipeline.Degrade.salvage;
            Printf.sprintf "%.3f" d.Pipeline.Degrade.drift;
            string_of_int o.injected;
            Printf.sprintf "%.3f" (o.instrumented_ipc /. o.baseline_ipc);
            (match o.violations with
            | [] -> "ok"
            | v :: _ -> Printf.sprintf "VIOLATION: %s" v);
          ])
    r.cells;
  Table.print table;
  Printf.printf "%d cells, %d crashed, %d violations\n%!" (List.length r.cells) r.crashed
    r.violations
