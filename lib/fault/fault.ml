module Prng = Ripple_util.Prng
module Json = Ripple_util.Json
module Program = Ripple_isa.Program
module Packet = Ripple_trace.Packet
module Pt = Ripple_trace.Pt

type t =
  | Clean
  | Flip_tnt of { flips : int }
  | Drop_tip of { count : int }
  | Garbage_tip of { count : int }
  | Truncate_pt of { keep : float }
  | Truncate_trace of { keep : float }
  | Layout_shift of { lines : int }
  | Edge_reshuffle of { fraction : float }
  | Hot_swap of { rotation : int }

let name = function
  | Clean -> "clean"
  | Flip_tnt _ -> "flip-tnt"
  | Drop_tip _ -> "drop-tip"
  | Garbage_tip _ -> "garbage-tip"
  | Truncate_pt _ -> "truncate-pt"
  | Truncate_trace _ -> "truncate-trace"
  | Layout_shift _ -> "layout-shift"
  | Edge_reshuffle _ -> "edge-reshuffle"
  | Hot_swap _ -> "hot-swap"

let to_string t =
  match t with
  | Clean -> "clean"
  | Flip_tnt { flips } -> Printf.sprintf "flip-tnt:%d" flips
  | Drop_tip { count } -> Printf.sprintf "drop-tip:%d" count
  | Garbage_tip { count } -> Printf.sprintf "garbage-tip:%d" count
  | Truncate_pt { keep } -> Printf.sprintf "truncate-pt:%g" keep
  | Truncate_trace { keep } -> Printf.sprintf "truncate-trace:%g" keep
  | Layout_shift { lines } -> Printf.sprintf "layout-shift:%d" lines
  | Edge_reshuffle { fraction } -> Printf.sprintf "edge-reshuffle:%g" fraction
  | Hot_swap { rotation } -> Printf.sprintf "hot-swap:%d" rotation

let to_json t =
  let param =
    match t with
    | Clean -> []
    | Flip_tnt { flips } -> [ ("flips", Json.Int flips) ]
    | Drop_tip { count } | Garbage_tip { count } -> [ ("count", Json.Int count) ]
    | Truncate_pt { keep } | Truncate_trace { keep } -> [ ("keep", Json.Float keep) ]
    | Layout_shift { lines } -> [ ("lines", Json.Int lines) ]
    | Edge_reshuffle { fraction } -> [ ("fraction", Json.Float fraction) ]
    | Hot_swap { rotation } -> [ ("rotation", Json.Int rotation) ]
  in
  Json.Obj (("class", Json.String (name t)) :: param)

(* ------------------------- PT stream faults ------------------------- *)

(* Parse a clean stream into its packet sequence (the injectors only
   ever corrupt streams the encoder just produced, so strict parsing is
   fine here), returning the raw header bytes and the packets. *)
let packets data =
  let _, start = Pt.split_header data in
  let len = Bytes.length data in
  let rec walk pos acc =
    if pos >= len then List.rev acc
    else begin
      let packet, next = Packet.read data ~pos in
      walk next (packet :: acc)
    end
  in
  (Bytes.sub data 0 start, Array.of_list (walk start []))

let rebuild header pkts =
  let buf = Buffer.create 4096 in
  Buffer.add_bytes buf header;
  Array.iter (function Some p -> Packet.write buf p | None -> ()) pkts;
  Buffer.to_bytes buf

let indices_of pkts pred =
  let acc = ref [] in
  Array.iteri (fun i p -> if pred p then acc := i :: !acc) pkts;
  Array.of_list (List.rev !acc)

(* Pick [count] distinct victims from [eligible] (all of them if fewer). *)
let pick_victims prng eligible count =
  let pool = Array.copy eligible in
  Prng.shuffle prng pool;
  Array.sub pool 0 (min count (Array.length pool))

let corrupt_pt ~seed fault data =
  match fault with
  | Clean | Truncate_trace _ | Layout_shift _ | Edge_reshuffle _ | Hot_swap _ -> data
  | Truncate_pt { keep } ->
    let _, start = Pt.split_header data in
    let payload = Bytes.length data - start in
    let kept = int_of_float (keep *. float_of_int payload) in
    Bytes.sub data 0 (start + max 0 (min payload kept))
  | Flip_tnt { flips } ->
    let prng = Prng.create ~seed in
    let header, pkts = packets data in
    let tnts = indices_of pkts (function Packet.Tnt _ -> true | _ -> false) in
    if Array.length tnts = 0 then data
    else begin
      let pkts =
        Array.map (function Packet.Tnt bits -> Packet.Tnt (Array.copy bits) | p -> p) pkts
      in
      for _ = 1 to flips do
        match pkts.(Prng.pick prng tnts) with
        | Packet.Tnt bits ->
          let j = Prng.int prng (Array.length bits) in
          bits.(j) <- not bits.(j)
        | Packet.Tip _ | Packet.End_of_trace -> assert false
      done;
      rebuild header (Array.map (fun p -> Some p) pkts)
    end
  | Drop_tip { count } ->
    let prng = Prng.create ~seed in
    let header, pkts = packets data in
    let tips = indices_of pkts (function Packet.Tip _ -> true | _ -> false) in
    let dropped = pick_victims prng tips count in
    let out = Array.map (fun p -> Some p) pkts in
    Array.iter (fun i -> out.(i) <- None) dropped;
    rebuild header out
  | Garbage_tip { count } ->
    let prng = Prng.create ~seed in
    let header, pkts = packets data in
    let tips = indices_of pkts (function Packet.Tip _ -> true | _ -> false) in
    let garbled = pick_victims prng tips count in
    let out = Array.map (fun p -> Some p) pkts in
    (* A garbage target is overwhelmingly unlikely to land on a block
       boundary, so the decoder sees a well-formed TIP pointing nowhere. *)
    Array.iter (fun i -> out.(i) <- Some (Packet.Tip (1 + Prng.int prng 0x3FFFFFFF))) garbled;
    rebuild header out

(* ----------------------- decoded-trace faults ----------------------- *)

let truncate_trace ~keep trace =
  let n = Array.length trace in
  Array.sub trace 0 (max 0 (min n (int_of_float (keep *. float_of_int n))))

(* Swap short windows of the trace between random positions: the edge
   weights the profile reports are redistributed over transitions the
   program cannot take, without changing any block's execution count. *)
let reshuffle ~seed ~fraction trace =
  let t = Array.copy trace in
  let n = Array.length t in
  let w = 4 in
  if n < 4 * w then t
  else begin
    let prng = Prng.create ~seed in
    (* Each swap seams at most four illegal transitions into the trace,
       so [fraction * n / 4] swaps targets a drift of [fraction] (less
       whatever swaps happen to land on identical content). *)
    let swaps = max 1 (int_of_float (fraction *. float_of_int n /. 4.0)) in
    for _ = 1 to swaps do
      let i = Prng.int prng (n - w) and j = Prng.int prng (n - w) in
      for k = 0 to w - 1 do
        let tmp = t.(i + k) in
        t.(i + k) <- t.(j + k);
        t.(j + k) <- tmp
      done
    done;
    t
  end

let apply_trace ~seed fault trace =
  match fault with
  | Truncate_trace { keep } -> truncate_trace ~keep trace
  | Edge_reshuffle { fraction } -> reshuffle ~seed ~fraction trace
  | Clean | Flip_tnt _ | Drop_tip _ | Garbage_tip _ | Truncate_pt _ | Layout_shift _
  | Hot_swap _ ->
    trace

(* ------------------------ profile-side drift ------------------------ *)

let profile_program fault program =
  match fault with
  | Layout_shift { lines } -> Program.relocate program ~line_shift:lines
  | _ -> program

let profile_rotation = function Hot_swap { rotation } -> Some rotation | _ -> None

(* ------------------------- expectations ----------------------------- *)

type expectation = Expect_full | Expect_degraded | Expect_off | Expect_any

let expectation_name = function
  | Expect_full -> "full"
  | Expect_degraded -> "degraded"
  | Expect_off -> "off"
  | Expect_any -> "any"

let expectation = function
  | Clean | Hot_swap _ -> Expect_full
  | Flip_tnt _ | Drop_tip _ | Garbage_tip _ -> Expect_any
  | Truncate_pt { keep } -> if keep <= 0.4 then Expect_degraded else Expect_any
  | Truncate_trace { keep } -> if keep < 0.5 then Expect_off else Expect_any
  | Layout_shift _ -> Expect_degraded
  | Edge_reshuffle { fraction } -> if fraction >= 0.3 then Expect_degraded else Expect_any

let matrix =
  [
    Clean;
    Flip_tnt { flips = 32 };
    Drop_tip { count = 8 };
    Garbage_tip { count = 8 };
    Truncate_pt { keep = 0.3 };
    Truncate_trace { keep = 0.3 };
    Layout_shift { lines = 3 };
    Edge_reshuffle { fraction = 0.5 };
    Hot_swap { rotation = 2 };
  ]
