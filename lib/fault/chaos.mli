(** The chaos harness: the fault matrix run end-to-end.

    For each (application, fault) cell the harness profiles the app on
    the train input, pushes the profile through the fault injector, runs
    the degradation-aware pipeline ({!Ripple_core.Pipeline.run} with
    [degrade = true] and an evaluation request), evaluates the
    instrumented binary on the clean evaluation trace, and checks the
    contract:

    - nothing may crash (a raised exception anywhere in the cell is a
      [Crashed] verdict, exit code 2);
    - every cell reports a salvage ratio and a degradation level;
    - the chosen level must match the fault's {!Fault.expectation};
    - a cell degraded to hints-off must match the uninstrumented
      baseline IPC on the same trace — the never-worse guarantee.

    Cells are deterministic in [(app, fault, seed)]; apps fan out over
    the domain pool. *)

module Pipeline := Ripple_core.Pipeline
module Config := Ripple_cpu.Config

type outcome = {
  degrade : Pipeline.Degrade.t;  (** ladder decision and its evidence *)
  pt_errors : int;  (** decode errors survived while reading the profile *)
  injected : int;  (** hints in the shipped binary *)
  baseline_ipc : float;  (** uninstrumented run on the eval trace *)
  instrumented_ipc : float;  (** instrumented run on the same trace *)
  violations : string list;  (** contract breaches; empty = cell passes *)
  metrics : Ripple_obs.Snapshot.t;
      (** deterministic metric snapshot of the cell's pipeline run *)
}

type status = Ran of outcome | Crashed of string

type cell = { app : string; fault : Fault.t; expectation : Fault.expectation; status : status }
type report = { cells : cell list; crashed : int; violations : int }

val run :
  ?apps:string list ->
  ?faults:Fault.t list ->
  ?n_instrs:int ->
  ?seed:int ->
  ?prefetch:Pipeline.prefetch ->
  ?policy:string ->
  ?config:Config.t ->
  ?jobs:int ->
  ?progress:(cell -> unit) ->
  unit ->
  report
(** Runs the matrix (defaults: all nine apps × {!Fault.matrix},
    200k instructions, FDIP, LRU).  [progress] is called once per
    finished cell, from worker domains. *)

val exit_code : report -> int
(** 2 if any cell crashed, 1 if any contract violation, else 0. *)

val merged_metrics : report -> Ripple_obs.Snapshot.t
(** All ran cells' snapshots folded together ({!Ripple_obs.Snapshot.merge})
    in cell order — deterministic across [jobs], since cells are ordered
    (app, fault) regardless of scheduling. *)

val report_to_json : report -> Ripple_util.Json.t
val print_summary : report -> unit
