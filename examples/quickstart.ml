(* Quickstart: the whole Ripple pipeline on one synthetic application.

     dune exec examples/quickstart.exe

   Steps (Fig. 4 of the paper):
     1. generate a data-center-style application and capture a PT-style
        execution profile;
     2. replay the ideal replacement policy offline, extract eviction
        windows, pick cue blocks, inject `invalidate` hints at link time;
     3. run the instrumented binary on a fresh input and compare against
        the plain LRU baseline and the ideal replacement bound. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Program = Ripple_isa.Program

let () =
  let n_instrs = 1_500_000 in
  (* 1. The application: kafka's model, and two load-generator inputs —
     one to profile, one to evaluate (§IV evaluates on inputs that
     differ from the training input). *)
  let workload = W.Cfg_gen.generate W.Apps.kafka in
  let program = workload.W.Cfg_gen.program in
  Printf.printf "application      : %s\n" W.Apps.kafka.W.App_model.name;
  Printf.printf "static footprint : %d KiB over %d basic blocks\n"
    (Program.static_bytes program / 1024)
    (Program.n_blocks program);
  let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  let warmup = Array.length eval / 2 in
  Printf.printf "profiled         : %d blocks (%d instructions)\n" (Array.length profile)
    n_instrs;

  (* 2. Offline analysis + link-time injection, with the instrumented
     binary evaluated on the fresh input — one [Pipeline.run] call. *)
  let outcome =
    Pipeline.run
      {
        Pipeline.Options.default with
        threshold = 0.55;
        prefetch = Pipeline.Fdip;
        eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy:Cache.Lru.make ());
      }
      ~source:program (Pipeline.Trace profile)
  in
  let analysis = outcome.Pipeline.analysis in
  Printf.printf "eviction windows : %d\n" analysis.Pipeline.n_windows;
  Printf.printf "cue decisions    : %d (threshold %.0f%%)\n" analysis.Pipeline.n_decisions
    (100.0 *. analysis.Pipeline.threshold);
  Printf.printf "hints injected   : %d (skipped: %d jit, %d capped)\n"
    analysis.Pipeline.injection.Ripple_core.Injector.injected
    analysis.Pipeline.injection.Ripple_core.Injector.skipped_jit
    analysis.Pipeline.injection.Ripple_core.Injector.skipped_cap;

  (* 3. Evaluate against the LRU baseline and the oracle bound. *)
  let baseline =
    Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
      ~prefetcher:(Pipeline.prefetcher_of Pipeline.Fdip) ()
  in
  let oracle =
    Simulator.oracle ~warmup ~mode:(Pipeline.belady_mode_of Pipeline.Fdip) ~program ~trace:eval
      ~prefetcher:(Pipeline.prefetcher_of Pipeline.Fdip) ()
  in
  let ripple = Option.get outcome.Pipeline.evaluation in
  let speedup r = 100.0 *. ((r.Simulator.ipc /. baseline.Simulator.ipc) -. 1.0) in
  Printf.printf "\n%-24s %10s %10s\n" "" "MPKI" "speedup";
  Printf.printf "%-24s %10.3f %10s\n" "FDIP + LRU (baseline)" baseline.Simulator.mpki "--";
  Printf.printf "%-24s %10.3f %+9.2f%%\n" "FDIP + Ripple-LRU"
    ripple.Pipeline.result.Simulator.mpki
    (speedup ripple.Pipeline.result);
  Printf.printf "%-24s %10.3f %+9.2f%%\n" "FDIP + ideal replacement" oracle.Simulator.mpki
    (speedup oracle);
  Printf.printf "\nripple coverage  : %.1f%%\n" (100.0 *. ripple.Pipeline.coverage);
  Printf.printf "ripple accuracy  : %.1f%%\n" (100.0 *. ripple.Pipeline.accuracy);
  Printf.printf "static overhead  : %.2f%%\n" (100.0 *. ripple.Pipeline.static_overhead);
  Printf.printf "dynamic overhead : %.2f%%\n" (100.0 *. ripple.Pipeline.dynamic_overhead)
