(* The Fig. 6 coverage/accuracy trade-off on finagle-http.

     dune exec examples/threshold_sweep.exe -- [n_instrs]

   Sweeps the invalidation threshold and prints coverage, accuracy and
   speedup: low thresholds cover almost every replacement decision but
   evict lines the program still needs; high thresholds are near-perfect
   but cover little.  The sweet spot sits mid-range (the paper finds
   45-65% across its nine applications). *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Table = Ripple_util.Table

let () =
  let n_instrs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_500_000
  in
  let workload = W.Cfg_gen.generate W.Apps.finagle_http in
  let program = workload.W.Cfg_gen.program in
  let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  let warmup = Array.length eval / 2 in
  let baseline =
    Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
      ~prefetcher:(Pipeline.prefetcher_of Pipeline.Fdip) ()
  in
  let table =
    Table.create ~title:"finagle-http, FDIP: invalidation-threshold sweep (Fig. 6)"
      ~columns:
        [
          ("threshold", Table.Right);
          ("decisions", Table.Right);
          ("coverage", Table.Right);
          ("accuracy", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  List.iter
    (fun threshold ->
      let outcome =
        Pipeline.run
          {
            Pipeline.Options.default with
            threshold;
            prefetch = Pipeline.Fdip;
            eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy:Cache.Lru.make ());
          }
          ~source:program (Pipeline.Trace profile)
      in
      let analysis = outcome.Pipeline.analysis in
      let ev = Option.get outcome.Pipeline.evaluation in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. threshold);
          string_of_int analysis.Pipeline.n_decisions;
          Printf.sprintf "%.1f%%" (100.0 *. ev.Pipeline.coverage);
          Printf.sprintf "%.1f%%" (100.0 *. ev.Pipeline.accuracy);
          Printf.sprintf "%+.2f%%"
            (100.0 *. ((ev.Pipeline.result.Simulator.ipc /. baseline.Simulator.ipc) -. 1.0));
        ])
    [ 0.05; 0.15; 0.25; 0.35; 0.45; 0.55; 0.65; 0.75; 0.85; 0.95 ];
  Table.print table
