(* Replacement-policy shoot-out on one application (§II-D in miniature).

     dune exec examples/policy_compare.exe -- [app] [n_instrs]

   Runs LRU, Random, SRRIP, DRRIP, GHRP, Hawkeye/Harmony, the ideal
   replacement bound, and Ripple over the chosen application under all
   three prefetchers. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Table = Ripple_util.Table

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tomcat" in
  let n_instrs =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1_500_000
  in
  let model =
    match W.Apps.by_name app with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown app %S; known: %s\n" app
        (String.concat ", " (List.map (fun m -> m.W.App_model.name) W.Apps.all));
      exit 1
  in
  let workload = W.Cfg_gen.generate model in
  let program = workload.W.Cfg_gen.program in
  let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  let warmup = Array.length eval / 2 in
  List.iter
    (fun prefetch ->
      let prefetcher = Pipeline.prefetcher_of prefetch in
      let run policy = Simulator.run ~warmup ~program ~trace:eval ~policy ~prefetcher () in
      let lru = run Cache.Lru.make in
      let rows =
        [
          ("LRU (baseline)", lru);
          ("Random", run (Cache.Random_policy.make ~seed:1));
          ("SRRIP", run Cache.Srrip.make);
          ("DRRIP", run (Cache.Drrip.make ()));
          ("GHRP", run (Cache.Ghrp.make ()));
          ("Hawkeye/Harmony", run (Cache.Hawkeye.make ()));
          ("SHiP", run Cache.Ship.make);
          ( "ideal replacement",
            Simulator.oracle ~warmup ~mode:(Pipeline.belady_mode_of prefetch) ~program
              ~trace:eval ~prefetcher () );
        ]
      in
      let outcome =
        Pipeline.run
          {
            Pipeline.Options.default with
            prefetch;
            eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy:Cache.Lru.make ());
          }
          ~source:program (Pipeline.Trace profile)
      in
      let ripple = Option.get outcome.Pipeline.evaluation in
      let rows = rows @ [ ("Ripple-LRU", ripple.Pipeline.result) ] in
      let table =
        Table.create
          ~title:(Printf.sprintf "%s — prefetcher: %s" app (Pipeline.prefetch_name prefetch))
          ~columns:
            [ ("policy", Table.Left); ("MPKI", Table.Right); ("speedup vs LRU", Table.Right) ]
      in
      List.iter
        (fun (name, r) ->
          Table.add_row table
            [
              name;
              Printf.sprintf "%.3f" r.Simulator.mpki;
              Printf.sprintf "%+.2f%%" (100.0 *. ((r.Simulator.ipc /. lru.Simulator.ipc) -. 1.0));
            ])
        rows;
      Table.print table;
      print_newline ())
    [ Pipeline.No_prefetch; Pipeline.Nlp; Pipeline.Fdip ]
