(* Cross-input profile generality (the paper's Fig. 13 scenario).

     dune exec examples/multi_input.exe -- [app]

   Optimizes the application with a profile from one load-generator
   input and measures the speedup on the other inputs, against
   input-specific profiles.  Profiles generalize — most of the gain
   survives a change of input — but input-specific profiles are better,
   as the paper reports (~17% more IPC gain). *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Table = Ripple_util.Table

let n_instrs = 1_500_000

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cassandra" in
  let model =
    match W.Apps.by_name app with Some m -> m | None -> failwith "unknown app"
  in
  let workload = W.Cfg_gen.generate model in
  let program = workload.W.Cfg_gen.program in
  let traces =
    Array.map (fun input -> W.Executor.run workload ~input ~n_instrs) W.Executor.eval_inputs
  in
  let generic = traces.(0) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s, FDIP: Ripple-LRU speedup with input #0's profile vs the input's own profile"
           app)
      ~columns:
        [ ("input", Table.Left); ("#0 profile", Table.Right); ("own profile", Table.Right) ]
  in
  Array.iteri
    (fun i input ->
      if i >= 1 then begin
        let trace = traces.(i) in
        let warmup = Array.length trace / 2 in
        let baseline =
          Simulator.run ~warmup ~program ~trace ~policy:Cache.Lru.make
            ~prefetcher:(Pipeline.prefetcher_of Pipeline.Fdip) ()
        in
        let speedup profile_trace =
          let oc =
            Pipeline.run
              {
                Pipeline.Options.default with
                prefetch = Pipeline.Fdip;
                eval = Some (Pipeline.Eval.v ~warmup ~trace ~policy:Cache.Lru.make ());
              }
              ~source:program (Pipeline.Trace profile_trace)
          in
          let ev = Option.get oc.Pipeline.evaluation in
          100.0 *. ((ev.Pipeline.result.Simulator.ipc /. baseline.Simulator.ipc) -. 1.0)
        in
        Table.add_row table
          [
            input.W.Executor.label;
            Printf.sprintf "%+.2f%%" (speedup generic);
            Printf.sprintf "%+.2f%%" (speedup trace);
          ]
      end)
    W.Executor.eval_inputs;
  Table.print table
