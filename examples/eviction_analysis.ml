(* The paper's Fig. 5 worked example, end to end.

     dune exec examples/eviction_analysis.exe

   A hand-built program and trace in which cache line A is repeatedly
   evicted by the ideal replacement policy.  The example walks through:
   the eviction windows recovered from the ideal replay, the candidate
   cue blocks of each window, their conditional probabilities
   P(evict A | exec B), and the final injection decision. *)

module Builder = Ripple_isa.Builder
module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Addr = Ripple_isa.Addr
module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream
module Geometry = Ripple_cache.Geometry
module Belady = Ripple_cache.Belady
module Eviction_window = Ripple_core.Eviction_window
module Cue_block = Ripple_core.Cue_block

(* One set, two ways: every same-parity line competes for the same two
   slots, so evictions are easy to provoke and follow. *)
let geometry = Geometry.v ~size_bytes:(2 * 64) ~ways:1

let () =
  (* Blocks A, B, C, D, E — each exactly one cache line. *)
  let b = Builder.create () in
  let name_of = [| "A"; "B"; "C"; "D"; "E" |] in
  let ids = Array.init 5 (fun _ -> Builder.block b ~bytes:64 ~term:Basic_block.Halt ()) in
  Array.iteri
    (fun i id ->
      Builder.set_term b id
        (Basic_block.Indirect [| ids.((i + 1) mod 5); ids.((i + 2) mod 5) |]))
    ids;
  let program = Builder.finish b ~entry:ids.(0) in
  let line_of i = List.hd (Basic_block.lines (Program.block program ids.(i))) in
  let a_line = line_of 0 in
  Printf.printf "cache line under study: A = %s\n\n"
    (Format.asprintf "%a" Addr.pp_line a_line);

  (* A dynamic block sequence in which A keeps getting evicted: every
     execution of C or E displaces A (1-way set), B executes often with
     no consequence for A. *)
  let seq = [ 0; 1; 2; 0; 1; 1; 4; 0; 2; 0; 1; 2; 0; 1; 1; 4; 0; 1; 2 ] in
  let stream =
    Access_stream.of_list
      (List.map (fun i -> Access.demand ~line:(line_of i) ~block:ids.(i)) seq)
  in
  Printf.printf "executed blocks : %s\n\n"
    (String.concat " " (List.map (fun i -> name_of.(i)) seq));

  (* Ideal-policy replay -> eviction windows for A. *)
  let replay = Belady.simulate geometry ~mode:Belady.Min stream in
  let windows = Eviction_window.of_evictions replay.Belady.evictions in
  let a_windows =
    Array.to_list windows |> List.filter (fun w -> w.Eviction_window.victim = a_line)
  in
  Printf.printf "A is evicted %d times by the ideal policy; its windows:\n"
    (List.length a_windows);
  List.iteri
    (fun i w ->
      Printf.printf "  window %d: after A@%d until the fill at %d, blocks inside: %s\n" (i + 1)
        w.Eviction_window.start w.Eviction_window.stop
        (String.concat " "
           (List.filteri (fun j _ -> j > w.Eviction_window.start && j <= w.Eviction_window.stop) seq
           |> List.map (fun b -> name_of.(b)))))
    a_windows;

  (* Conditional probabilities and the decision. *)
  let exec_counts = Array.make (Program.n_blocks program) 0 in
  Access_stream.iter
    (fun a -> exec_counts.(Access.packed_block a) <- exec_counts.(Access.packed_block a) + 1)
    stream;
  Printf.printf "\nexecution counts: %s\n"
    (String.concat ", "
       (List.mapi (fun i id -> Printf.sprintf "%s=%d" name_of.(i) exec_counts.(id))
          (Array.to_list ids)));
  let decisions =
    Cue_block.analyze ~min_support:1 ~stream ~windows ~exec_counts ~threshold:0.5 ()
  in
  Printf.printf "\ndecisions at threshold 50%%:\n";
  List.iter
    (fun (d : Cue_block.decision) ->
      let idx = ref 0 in
      Array.iteri (fun i id -> if id = d.Cue_block.cue_block then idx := i) ids;
      Printf.printf
        "  inject `invalidate %s` into block %s  (P(evict|exec) = %.2f, covers %d windows)\n"
        (Format.asprintf "%a" Addr.pp_line d.Cue_block.victim)
        name_of.(!idx) d.Cue_block.probability d.Cue_block.windows)
    decisions;
  if decisions = [] then print_endline "  (none cleared the threshold)"
